"""SDF3-compatible XML reader/writer (subset).

SDF3 [Stuijk et al. ACSD'06] distributes the benchmark graphs the paper
evaluates as ``<sdf3 type="sdf">`` / ``<sdf3 type="csdf">`` documents.
This module speaks the structural subset:

* ``<actor name=..>`` with ``<port type="in|out" name=.. rate=..>`` —
  CSDF rates are comma-separated phase lists;
* ``<channel name=.. srcActor=.. srcPort=.. dstActor=.. dstPort=..
  initialTokens=..>``;
* actor execution times from the ``<actorProperties>`` section
  (``<executionTime time="..."/>``, comma-separated for CSDF phases).

Properties this library does not model (memory sizes, processor types)
are ignored on read and omitted on write.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.exceptions import ModelError
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task


def _parse_rate(text: str) -> Tuple[int, ...]:
    """An SDF3 rate: ``"3"`` or a CSDF phase list ``"1,0,2"``.

    SDF3 also allows ``value*repeat`` shorthand (e.g. ``"1*4"``).
    """
    parts = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if "*" in chunk:
            value, repeat = chunk.split("*", 1)
            parts.extend([int(value)] * int(repeat))
        else:
            parts.append(int(chunk))
    if not parts:
        raise ModelError(f"empty rate specification {text!r}")
    return tuple(parts)


def read_sdf3_xml(source: Union[str, Path]) -> CsdfGraph:
    """Parse an SDF3 document (path or XML string) into a graph."""
    text = str(source)
    if "\n" not in text and Path(text).exists():
        text = Path(text).read_text()
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ModelError(f"invalid XML: {exc}") from exc
    if root.tag != "sdf3":
        raise ModelError(f"expected <sdf3> root, got <{root.tag}>")
    app = root.find("applicationGraph")
    if app is None:
        raise ModelError("missing <applicationGraph>")
    graph_el = None
    for tag in ("csdf", "sdf"):
        graph_el = app.find(tag)
        if graph_el is not None:
            break
    if graph_el is None:
        raise ModelError("missing <sdf>/<csdf> element")

    # execution times live in the properties section
    durations: Dict[str, Tuple[int, ...]] = {}
    props = app.find(f"{graph_el.tag}Properties")
    if props is not None:
        for actor_props in props.findall("actorProperties"):
            name = actor_props.get("actor")
            exec_el = actor_props.find(".//executionTime")
            if name and exec_el is not None and exec_el.get("time"):
                durations[name] = _parse_rate(exec_el.get("time"))

    # port rates per actor
    port_rates: Dict[Tuple[str, str], Tuple[int, ...]] = {}
    actor_phases: Dict[str, int] = {}
    graph = CsdfGraph(graph_el.get("name", "sdf3graph"))
    for actor in graph_el.findall("actor"):
        name = actor.get("name")
        if not name:
            raise ModelError("actor without a name")
        phases = 1
        for port in actor.findall("port"):
            rate = _parse_rate(port.get("rate", "1"))
            port_rates[(name, port.get("name", ""))] = rate
            phases = max(phases, len(rate))
        dur = durations.get(name, tuple([1] * phases))
        if len(dur) == 1 and phases > 1:
            dur = tuple([dur[0]] * phases)
        if len(dur) != phases:
            raise ModelError(
                f"actor {name!r}: {len(dur)} execution times for "
                f"{phases} phases"
            )
        actor_phases[name] = phases
        graph.add_task(Task(name, dur))

    def full_rate(actor: str, port: str) -> Tuple[int, ...]:
        rate = port_rates.get((actor, port))
        if rate is None:
            raise ModelError(f"channel references unknown port "
                             f"{actor!r}.{port!r}")
        phases = actor_phases[actor]
        if len(rate) == 1 and phases > 1:
            return tuple([rate[0]] * phases)
        return rate

    for channel in graph_el.findall("channel"):
        src = channel.get("srcActor")
        dst = channel.get("dstActor")
        if not src or not dst:
            raise ModelError("channel missing endpoints")
        graph.add_buffer(
            Buffer(
                name=channel.get("name") or f"{src}_{dst}",
                source=src,
                target=dst,
                production=full_rate(src, channel.get("srcPort", "")),
                consumption=full_rate(dst, channel.get("dstPort", "")),
                initial_tokens=int(channel.get("initialTokens", "0")),
            )
        )
    return graph


def write_sdf3_xml(graph: CsdfGraph, path: Union[str, Path, None] = None) -> str:
    """Serialize a graph as an SDF3 document; optionally write to disk."""
    kind = "sdf" if graph.is_sdf() else "csdf"
    root = ET.Element("sdf3", {"type": kind, "version": "1.0"})
    app = ET.SubElement(root, "applicationGraph", {"name": graph.name})
    g_el = ET.SubElement(app, kind, {"name": graph.name, "type": graph.name})

    out_ports: Dict[str, List[str]] = {t.name: [] for t in graph.tasks()}
    in_ports: Dict[str, List[str]] = {t.name: [] for t in graph.tasks()}
    actor_els = {}
    for t in graph.tasks():
        actor_els[t.name] = ET.SubElement(
            g_el, "actor", {"name": t.name, "type": t.name}
        )
    for b in graph.buffers():
        src_port = f"out_{b.name}"
        dst_port = f"in_{b.name}"
        ET.SubElement(
            actor_els[b.source], "port",
            {"type": "out", "name": src_port,
             "rate": ",".join(map(str, b.production))},
        )
        ET.SubElement(
            actor_els[b.target], "port",
            {"type": "in", "name": dst_port,
             "rate": ",".join(map(str, b.consumption))},
        )
        attrs = {
            "name": b.name,
            "srcActor": b.source,
            "srcPort": src_port,
            "dstActor": b.target,
            "dstPort": dst_port,
        }
        if b.initial_tokens:
            attrs["initialTokens"] = str(b.initial_tokens)
        ET.SubElement(g_el, "channel", attrs)

    props = ET.SubElement(app, f"{kind}Properties")
    for t in graph.tasks():
        actor_props = ET.SubElement(props, "actorProperties", {"actor": t.name})
        proc = ET.SubElement(actor_props, "processor",
                             {"type": "cpu", "default": "true"})
        ET.SubElement(proc, "executionTime",
                      {"time": ",".join(map(str, t.durations))})

    text = ET.tostring(root, encoding="unicode")
    if path is not None:
        Path(path).write_text(text)
    return text
