"""JSON serialization of K-periodic schedules.

A certified schedule is the deliverable a runtime system consumes: the
periodicity vector K, the exact rational period, per-task periods, and
the start times of the periodic pattern. Rationals are stored as
``[numerator, denominator]`` pairs so the round-trip stays exact.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Union

from repro.exceptions import ModelError
from repro.kperiodic.schedule import KPeriodicSchedule

FORMAT_TAG = "repro-kperiodic-schedule"
FORMAT_VERSION = 1


def _frac(value: Fraction) -> list:
    return [value.numerator, value.denominator]


def schedule_to_json(schedule: KPeriodicSchedule) -> str:
    """Serialize a schedule (exact; see module docstring for encoding)."""
    payload = {
        "format": FORMAT_TAG,
        "version": FORMAT_VERSION,
        "K": dict(schedule.K),
        "omega": _frac(schedule.omega),
        "task_periods": {
            t: _frac(p) for t, p in schedule.task_periods.items()
        },
        "starts": [
            {
                "task": task,
                "phase": phase,
                "beta": beta,
                "time": _frac(value),
            }
            for (task, phase, beta), value in sorted(
                schedule.starts.items()
            )
        ],
    }
    return json.dumps(payload, indent=2)


def schedule_from_json(text: str) -> KPeriodicSchedule:
    """Parse a schedule serialized by :func:`schedule_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid JSON: {exc}") from exc
    if payload.get("format") != FORMAT_TAG:
        raise ModelError(
            f"not a {FORMAT_TAG} document "
            f"(format={payload.get('format')!r})"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise ModelError(f"unsupported version {payload.get('version')!r}")
    return KPeriodicSchedule(
        K={t: int(k) for t, k in payload["K"].items()},
        omega=Fraction(*payload["omega"]),
        task_periods={
            t: Fraction(*pair)
            for t, pair in payload["task_periods"].items()
        },
        starts={
            (e["task"], int(e["phase"]), int(e["beta"])):
                Fraction(*e["time"])
            for e in payload["starts"]
        },
    )


def save_schedule(
    schedule: KPeriodicSchedule, path: Union[str, Path]
) -> None:
    Path(path).write_text(schedule_to_json(schedule))


def load_schedule(path: Union[str, Path]) -> KPeriodicSchedule:
    return schedule_from_json(Path(path).read_text())
