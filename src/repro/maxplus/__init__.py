"""Max-plus algebra over exact rationals.

The max-plus view of dataflow (de Groote et al. — the paper's reference
[6]): a live HSDF graph evolves as ``x_{k+1} = A ⊗ x_k`` where ``x_k``
holds the k-th firing times and ``A`` is the one-token-delay transition
matrix; the throughput is the reciprocal of A's max-plus **eigenvalue**
(= maximum cycle mean of A's precedence graph), and a corresponding
eigenvector is a self-timed steady-state firing offset profile.

Combined with the CSDF→HSDF unfolding this yields a fourth independent
exact throughput engine, cross-checked against K-Iter in the tests.

* :mod:`repro.maxplus.matrix` — dense max-plus matrices (ε = −∞,
  ⊕ = max, ⊗ = +) over ``Fraction``.
* :mod:`repro.maxplus.spectral` — eigenvalue (via the MCRP engines) and
  eigenvector (via the Kleene star of the λ-normalized matrix).
* :mod:`repro.maxplus.from_graph` — transition matrices from marked
  bi-valued graphs / unfolded CSDFGs.
"""

from repro.maxplus.matrix import EPSILON, MaxPlusMatrix
from repro.maxplus.spectral import eigenvalue, eigenvector, spectral_analysis
from repro.maxplus.from_graph import (
    state_matrix_from_marked_graph,
    throughput_maxplus,
)

__all__ = [
    "EPSILON",
    "MaxPlusMatrix",
    "eigenvalue",
    "eigenvector",
    "spectral_analysis",
    "state_matrix_from_marked_graph",
    "throughput_maxplus",
]
