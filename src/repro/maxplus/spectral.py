"""Max-plus spectral theory: eigenvalue and eigenvectors.

For an irreducible max-plus matrix A (strongly connected precedence
graph) the eigenproblem ``A ⊗ v = λ ⊗ v`` has the unique eigenvalue

    λ = maximum cycle mean of A's precedence graph

(the arc ``j → i`` with weight ``A[i][j]``), and eigenvectors are the
columns of ``(A_λ)* = (−λ ⊗ A)*`` taken at *critical* nodes (nodes on a
maximum-mean cycle). Both facts are classical (Baccelli et al.,
"Synchronization and Linearity"); the implementation reuses the exact
MCRP engines for λ and the Kleene star for the eigenvector, so
everything stays rational and certified.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.exceptions import SolverError
from repro.maxplus.matrix import Entry, MaxPlusMatrix
from repro.mcrp.graph import BiValuedGraph
from repro.mcrp.ratio_iteration import max_cycle_ratio


def _precedence_graph(matrix: MaxPlusMatrix):
    """Arc j→i of weight A[i][j], unit transit (cycle ratio = mean).

    Costs must be non-negative for the ratio engine; shift all finite
    entries up by a common offset and remember it (cycle means shift by
    exactly the offset, so the caller subtracts it back).
    """
    finite = [
        v for row in matrix.rows for v in row if v is not None
    ]
    offset = min(finite) if finite else Fraction(0)
    if offset > 0:
        offset = Fraction(0)
    g = BiValuedGraph(matrix.n)
    for i, row in enumerate(matrix.rows):
        for j, v in enumerate(row):
            if v is not None:
                g.add_arc(j, i, v - offset, 1)
    return g, offset


def eigenvalue(matrix: MaxPlusMatrix) -> Optional[Fraction]:
    """The max-plus eigenvalue (max cycle mean); None for acyclic A.

    Examples
    --------
    >>> eigenvalue(MaxPlusMatrix([[None, 2], [4, None]]))
    Fraction(3, 1)
    """
    graph, offset = _precedence_graph(matrix)
    result = max_cycle_ratio(graph)
    if result.ratio is None:
        return None
    return result.ratio + offset


@dataclass
class SpectralResult:
    """Eigenvalue, an eigenvector, and the critical nodes."""

    eigenvalue: Fraction
    eigenvector: List[Entry]
    critical_nodes: List[int]

    def residual(self, matrix: MaxPlusMatrix) -> List[Entry]:
        """``(A ⊗ v) − λ − v`` per finite component (all 0 iff exact)."""
        image = matrix.apply(self.eigenvector)
        out: List[Entry] = []
        for img, v in zip(image, self.eigenvector):
            if img is None or v is None:
                out.append(None)
            else:
                out.append(img - self.eigenvalue - v)
        return out


def spectral_analysis(matrix: MaxPlusMatrix) -> SpectralResult:
    """Eigenvalue + eigenvector (requires a cycle; see module docs).

    For irreducible matrices the returned vector is finite everywhere
    and satisfies ``A ⊗ v = λ ⊗ v`` exactly (pinned by tests); for
    reducible matrices components unreachable from the critical nodes
    stay ε.
    """
    graph, offset = _precedence_graph(matrix)
    result = max_cycle_ratio(graph)
    if result.ratio is None:
        raise SolverError("acyclic matrix has no eigenvalue")
    lam = result.ratio + offset
    normalized = matrix.add_scalar(-lam)
    star = normalized.kleene_star()
    critical = sorted(set(result.cycle_nodes))
    column = critical[0]
    vector = [star.rows[i][column] for i in range(matrix.n)]
    return SpectralResult(
        eigenvalue=lam,
        eigenvector=vector,
        critical_nodes=critical,
    )


def eigenvector(matrix: MaxPlusMatrix) -> List[Entry]:
    """Convenience wrapper returning just the eigenvector."""
    return spectral_analysis(matrix).eigenvector
