"""Max-plus state matrices from marked precedence graphs.

A live marked precedence graph (arcs ``(u, v, L, m)``: v's k-th firing
waits for u's (k−m)-th plus L) evolves as a first-order max-plus
recurrence after two classical rewrites:

* **zero-delay folding** — arcs with m = 0 form a DAG (a 0-delay cycle
  with positive cost would be a deadlock), so
  ``x_k = C ⊗ x_k ⊕ D ⊗ x_{k−1}`` closes to ``x_k = C* ⊗ D ⊗ x_{k−1}``;
* **delay-chain expansion** — an arc with m ≥ 2 routes through m−1
  auxiliary unit-delay nodes.

``throughput_maxplus`` composes this with the CSDF→HSDF unfolding: the
state matrix's max-plus eigenvalue is exactly the graph's minimum
period — de Groote-style max-plus throughput analysis [6] as a fourth
independent exact engine (cross-checked against K-Iter in the tests).

Dense-matrix cost is Θ(n³) with ``n = Σ_t q_t·ϕ(t)`` plus chain nodes:
an *analysis pearl* for moderate graphs, not the production path (that
is K-Iter).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ModelError
from repro.maxplus.matrix import MaxPlusMatrix
from repro.maxplus.spectral import eigenvalue as _eigenvalue
from repro.mcrp.graph import BiValuedGraph


def state_matrix_from_marked_graph(
    graph: BiValuedGraph,
) -> Tuple[MaxPlusMatrix, List]:
    """``A`` with ``x_k = A ⊗ x_{k−1}`` from a marked bi-valued graph.

    Arc transits must be non-negative integers (delay tokens). Returns
    the matrix and its row labels (original labels + synthesized chain
    nodes).
    """
    labels = list(graph.labels)
    zero_arcs: List[Tuple[int, int, Fraction]] = []
    unit_arcs: List[Tuple[int, int, Fraction]] = []
    extra = 0
    for idx in range(graph.arc_count):
        u = graph.arc_src[idx]
        v = graph.arc_dst[idx]
        cost = graph.arc_cost[idx]
        transit = graph.arc_transit[idx]
        if transit.denominator != 1 or transit < 0:
            raise ModelError(
                "state matrix needs integer non-negative delays "
                f"(arc {idx}: {transit})"
            )
        m = int(transit)
        if m == 0:
            zero_arcs.append((u, v, cost))
        elif m == 1:
            unit_arcs.append((u, v, cost))
        else:
            # u → c_1 → … → c_{m−1} → v, one delay per hop
            prev = u
            for hop in range(m - 1):
                node = len(labels)
                labels.append(("__delay", idx, hop))
                unit_arcs.append((prev, node, Fraction(0)))
                prev = node
                extra += 1
            unit_arcs.append((prev, v, cost))

    n = len(labels)
    c_rows = [[None] * n for _ in range(n)]
    d_rows = [[None] * n for _ in range(n)]
    for u, v, cost in zero_arcs:
        if c_rows[v][u] is None or cost > c_rows[v][u]:
            c_rows[v][u] = cost
    for u, v, cost in unit_arcs:
        if d_rows[v][u] is None or cost > d_rows[v][u]:
            d_rows[v][u] = cost
    c_matrix = MaxPlusMatrix(c_rows)
    d_matrix = MaxPlusMatrix(d_rows)
    try:
        c_star = c_matrix.kleene_star()
    except ValueError as exc:
        raise ModelError(
            "zero-delay subgraph has a positive cycle (deadlock); "
            "no max-plus state matrix exists"
        ) from exc
    return c_star @ d_matrix, labels


@dataclass
class MaxPlusThroughput:
    """Outcome of the max-plus throughput method."""

    period: Fraction
    matrix_size: int

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.period == 0:
            return None
        return Fraction(1, 1) / self.period


def throughput_maxplus(graph) -> MaxPlusThroughput:
    """Exact CSDF throughput via unfolding + max-plus eigenvalue.

    Examples
    --------
    >>> from repro.generators.paper import figure2_graph
    >>> throughput_maxplus(figure2_graph()).period
    Fraction(13, 1)
    """
    from repro.baselines.unfolding import unfold_csdf_to_hsdf

    hsdf, _index = unfold_csdf_to_hsdf(graph, reduced=True)
    matrix, labels = state_matrix_from_marked_graph(hsdf)
    lam = _eigenvalue(matrix)
    period = lam if lam is not None else Fraction(0)
    return MaxPlusThroughput(period=period, matrix_size=len(labels))
