"""Dense max-plus matrices over exact rationals.

The max-plus semiring: carrier ``ℚ ∪ {ε}`` with ``ε = −∞``,
addition ``a ⊕ b = max(a, b)`` (neutral ε), multiplication
``a ⊗ b = a + b`` (neutral 0, absorbing ε). Matrices multiply the usual
way with (⊕, ⊗) in place of (+, ×).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Union

Entry = Optional[Fraction]  # None encodes ε = −∞
EPSILON: Entry = None


def _oplus(a: Entry, b: Entry) -> Entry:
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b


def _otimes(a: Entry, b: Entry) -> Entry:
    if a is None or b is None:
        return None
    return a + b


class MaxPlusMatrix:
    """A square max-plus matrix (entries Fraction or ε).

    Examples
    --------
    >>> a = MaxPlusMatrix([[0, None], [3, 1]])
    >>> (a @ a).rows[1][0]
    Fraction(4, 1)
    """

    def __init__(self, rows: Sequence[Sequence[Union[Entry, int]]]):
        n = len(rows)
        self.rows: List[List[Entry]] = []
        for row in rows:
            if len(row) != n:
                raise ValueError("matrix must be square")
            self.rows.append([
                None if v is None else Fraction(v) for v in row
            ])
        self.n = n

    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "MaxPlusMatrix":
        return MaxPlusMatrix([
            [Fraction(0) if i == j else None for j in range(n)]
            for i in range(n)
        ])

    @staticmethod
    def epsilon_matrix(n: int) -> "MaxPlusMatrix":
        return MaxPlusMatrix([[None] * n for _ in range(n)])

    def __matmul__(self, other: "MaxPlusMatrix") -> "MaxPlusMatrix":
        if self.n != other.n:
            raise ValueError("dimension mismatch")
        n = self.n
        result = [[None] * n for _ in range(n)]
        other_rows = other.rows
        for i in range(n):
            left = self.rows[i]
            out = result[i]
            for k in range(n):
                lv = left[k]
                if lv is None:
                    continue
                right = other_rows[k]
                for j in range(n):
                    rv = right[j]
                    if rv is None:
                        continue
                    cand = lv + rv
                    if out[j] is None or cand > out[j]:
                        out[j] = cand
        return MaxPlusMatrix(result)

    def oplus(self, other: "MaxPlusMatrix") -> "MaxPlusMatrix":
        if self.n != other.n:
            raise ValueError("dimension mismatch")
        return MaxPlusMatrix([
            [_oplus(a, b) for a, b in zip(ra, rb)]
            for ra, rb in zip(self.rows, other.rows)
        ])

    def add_scalar(self, scalar: Fraction) -> "MaxPlusMatrix":
        """``scalar ⊗ A`` (adds to every finite entry)."""
        return MaxPlusMatrix([
            [None if v is None else v + scalar for v in row]
            for row in self.rows
        ])

    def power(self, k: int) -> "MaxPlusMatrix":
        if k < 0:
            raise ValueError("negative power")
        result = MaxPlusMatrix.identity(self.n)
        base = self
        while k:
            if k & 1:
                result = result @ base
            base = base @ base
            k >>= 1
        return result

    def kleene_star(self) -> "MaxPlusMatrix":
        """``A* = I ⊕ A ⊕ A² ⊕ … ⊕ A^{n−1}``.

        Well-defined (finite) iff A has no positive-weight cycle;
        raises ``ValueError`` otherwise (detected by a further power
        still improving).
        """
        total = MaxPlusMatrix.identity(self.n)
        term = MaxPlusMatrix.identity(self.n)
        for _ in range(self.n - 1):
            term = term @ self
            total = total.oplus(term)
        # one more multiplication must not improve anything
        probe = total.oplus(total @ self)
        if probe.rows != total.rows:
            raise ValueError(
                "Kleene star diverges (positive cycle in the matrix)"
            )
        return total

    def apply(self, vector: Sequence[Entry]) -> List[Entry]:
        """``A ⊗ v``."""
        if len(vector) != self.n:
            raise ValueError("dimension mismatch")
        out: List[Entry] = []
        for row in self.rows:
            acc: Entry = None
            for a, v in zip(row, vector):
                acc = _oplus(acc, _otimes(a, v))
            out.append(acc)
        return out

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MaxPlusMatrix) and self.rows == other.rows
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def cell(v: Entry) -> str:
            return "ε" if v is None else str(v)

        body = "; ".join(
            " ".join(cell(v) for v in row) for row in self.rows
        )
        return f"MaxPlusMatrix[{body}]"
