"""Multiprocessor mapping: throughput under resource constraints.

The paper's industrial context (the Kalray MPPA toolchain) evaluates
dataflow applications *mapped* onto processors: tasks sharing a
processor execute in a static order, which constrains throughput beyond
the pure dataflow dependencies. This package models that as a **pure
graph transformation** — each processor becomes a zero-duration
scheduler task whose cyclo-static grant/release channels enforce the
static order — so every analysis in the library (K-Iter, symbolic,
bounds, schedules) applies unchanged to mapped graphs.

* :mod:`repro.mapping.partition` — the :class:`Mapping` model
  (task→processor assignment + per-processor static order).
* :mod:`repro.mapping.transform` — the scheduler-task encoding.
* :mod:`repro.mapping.heuristics` — admissible-order construction and
  greedy load balancing.
"""

from repro.mapping.partition import Mapping
from repro.mapping.transform import apply_mapping
from repro.mapping.heuristics import (
    admissible_static_order,
    greedy_load_balance,
    throughput_under_mapping,
)

__all__ = [
    "Mapping",
    "apply_mapping",
    "admissible_static_order",
    "greedy_load_balance",
    "throughput_under_mapping",
]
