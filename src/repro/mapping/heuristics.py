"""Mapping heuristics: admissible orders and greedy load balancing.

The static order of a processor must be *admissible*: following it must
never block forever on missing tokens. Orders are derived from a greedy
execution of the untimed token game over the whole graph — the recorded
per-task iteration sequence is feasible by construction, and its
restriction to each processor stays feasible when every processor
follows its own restriction (the global order is one legal interleaving
of the per-processor orders). Liveness of the mapped graph is checked
anyway — defence against future heuristics.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.analysis.consistency import repetition_vector
from repro.analysis.liveness import is_live
from repro.exceptions import DeadlockError, ModelError
from repro.kperiodic.kiter import KIterResult, throughput_kiter
from repro.mapping.partition import Mapping
from repro.mapping.transform import apply_mapping
from repro.model.graph import CsdfGraph


def admissible_static_order(
    graph: CsdfGraph,
    repetition: Optional[Dict[str, int]] = None,
    *,
    granularity: str = "iteration",
) -> List[str]:
    """A PASS: one admissible global sequential order (task names).

    Greedy token game: repeatedly fire any task that can complete one
    unit — a full iteration (``granularity="iteration"``) or a single
    phase firing (``"phase"``) — until every task reaches its per-round
    quota. Monotonicity (point-to-point buffers) makes greedy complete:
    it succeeds iff *some* order exists.

    Every live graph admits a phase-granular order; iteration
    granularity can genuinely fail on graphs whose liveness needs
    cross-task phase interleaving (Figure 2!), reported as
    :class:`DeadlockError`.
    """
    if granularity == "phase":
        return _phase_granular_order(graph, repetition)
    if granularity != "iteration":
        raise ModelError(
            f"unknown granularity {granularity!r} "
            "(use 'iteration' or 'phase')"
        )
    if repetition is None:
        repetition = repetition_vector(graph)
    names = graph.task_names()
    index = {n: i for i, n in enumerate(names)}
    phi = {n: graph.task(n).phase_count for n in names}
    remaining = {n: repetition[n] for n in names}

    buffers = list(graph.buffers())
    tokens = [b.initial_tokens for b in buffers]
    consumes: Dict[str, List[Tuple[int, tuple]]] = {n: [] for n in names}
    produces: Dict[str, List[Tuple[int, tuple]]] = {n: [] for n in names}
    for b_idx, b in enumerate(buffers):
        produces[b.source].append((b_idx, b.production))
        consumes[b.target].append((b_idx, b.consumption))

    def can_iterate(t: str) -> bool:
        """One whole iteration, phase by phase, on a scratch marking."""
        scratch = dict()
        for p in range(phi[t]):
            for b_idx, rates in consumes[t]:
                level = scratch.get(b_idx, tokens[b_idx]) - rates[p]
                if level < 0:
                    return False
                scratch[b_idx] = level
            for b_idx, rates in produces[t]:
                scratch[b_idx] = scratch.get(b_idx, tokens[b_idx]) + rates[p]
        return True

    def fire_iteration(t: str) -> None:
        for p in range(phi[t]):
            for b_idx, rates in consumes[t]:
                tokens[b_idx] -= rates[p]
            for b_idx, rates in produces[t]:
                tokens[b_idx] += rates[p]

    order: List[str] = []
    total = sum(remaining.values())
    while len(order) < total:
        progressed = False
        for t in names:
            if remaining[t] and can_iterate(t):
                fire_iteration(t)
                remaining[t] -= 1
                order.append(t)
                progressed = True
        if not progressed:
            raise DeadlockError(
                f"graph {graph.name!r} admits no iteration-granular "
                "sequential order (deadlock or phase-interleaving-only "
                "liveness); try granularity='phase'"
            )
    return order


def _phase_granular_order(
    graph: CsdfGraph,
    repetition: Optional[Dict[str, int]] = None,
) -> List[str]:
    """One admissible global *phase-firing* order (q_t·ϕ(t) per task)."""
    if repetition is None:
        repetition = repetition_vector(graph)
    names = graph.task_names()
    phi = {n: graph.task(n).phase_count for n in names}
    cursor = {n: 0 for n in names}
    remaining = {n: repetition[n] * phi[n] for n in names}

    buffers = list(graph.buffers())
    tokens = [b.initial_tokens for b in buffers]
    consumes: Dict[str, List[Tuple[int, tuple]]] = {n: [] for n in names}
    produces: Dict[str, List[Tuple[int, tuple]]] = {n: [] for n in names}
    for b_idx, b in enumerate(buffers):
        produces[b.source].append((b_idx, b.production))
        consumes[b.target].append((b_idx, b.consumption))

    order: List[str] = []
    total = sum(remaining.values())
    while len(order) < total:
        progressed = False
        for t in names:
            while remaining[t]:
                p = cursor[t]
                if any(tokens[b] < rates[p] for b, rates in consumes[t]):
                    break
                for b, rates in consumes[t]:
                    tokens[b] -= rates[p]
                for b, rates in produces[t]:
                    tokens[b] += rates[p]
                cursor[t] = (p + 1) % phi[t]
                remaining[t] -= 1
                order.append(t)
                progressed = True
        if not progressed:
            raise DeadlockError(
                f"graph {graph.name!r} admits no sequential order: "
                "it deadlocks"
            )
    return order


def greedy_load_balance(
    graph: CsdfGraph,
    processor_count: int,
    *,
    repetition: Optional[Dict[str, int]] = None,
) -> Mapping:
    """Longest-processing-time-first assignment + derived static orders.

    Tasks are sorted by workload ``q_t·Σ_p d(t_p)`` and greedily placed
    on the least-loaded processor; per-processor orders are the
    restriction of one admissible global order.
    """
    if processor_count < 1:
        raise ModelError(f"need ≥ 1 processor, got {processor_count}")
    if repetition is None:
        repetition = repetition_vector(graph)
    workloads = {
        t.name: repetition[t.name] * t.iteration_duration
        for t in graph.tasks()
    }
    load = {f"cpu{i}": 0 for i in range(processor_count)}
    assignment: Dict[str, str] = {}
    for t in sorted(workloads, key=workloads.__getitem__, reverse=True):
        proc = min(load, key=load.__getitem__)
        assignment[t] = proc
        load[proc] += workloads[t]
    try:
        global_order = admissible_static_order(graph, repetition)
        granularity = "iteration"
    except DeadlockError:
        global_order = admissible_static_order(
            graph, repetition, granularity="phase"
        )
        granularity = "phase"
    orders = {
        proc: [t for t in global_order if assignment[t] == proc]
        for proc in load
    }
    # drop empty processors (fewer tasks than processors)
    used = {p for p in orders if orders[p]}
    return Mapping(
        assignment=assignment,
        orders={p: o for p, o in orders.items() if p in used},
        granularity=granularity,
    )


def throughput_under_mapping(
    graph: CsdfGraph,
    mapping: Mapping,
    *,
    engine: str = "ratio-iteration",
    time_budget: Optional[float] = None,
) -> Tuple[KIterResult, CsdfGraph]:
    """Exact throughput of ``graph`` executed under ``mapping``.

    Returns the K-Iter result on the transformed graph plus the graph
    itself (for inspection / scheduling). Raises
    :class:`DeadlockError` when the static orders are inadmissible.
    """
    mapped = apply_mapping(graph, mapping)
    if not is_live(mapped):
        raise DeadlockError(
            f"mapping of {graph.name!r} is inadmissible (static orders "
            "deadlock)"
        )
    result = throughput_kiter(
        mapped, engine=engine, time_budget=time_budget
    )
    return result, mapped
