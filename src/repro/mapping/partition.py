"""The mapping model: assignment + per-processor static orders.

A :class:`Mapping` assigns every task to a processor and fixes, per
processor, a *static order*: a sequence of task iterations executed
round-robin. A valid order for processor ``P`` contains exactly ``q_t``
occurrences of every task mapped to ``P`` (one PASS — periodic
admissible sequential schedule — per graph iteration); admissibility
(deadlock freedom) additionally depends on token availability and is
checked against the transformed graph by
:func:`repro.mapping.heuristics.throughput_under_mapping`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ModelError
from repro.model.graph import CsdfGraph


@dataclass
class Mapping:
    """Task→processor assignment with per-processor static orders.

    Attributes
    ----------
    assignment:
        Maps each task name to a processor name.
    orders:
        Maps each processor name to its firing sequence (task names).
    granularity:
        ``"iteration"`` — each order entry is one full task iteration
        (``q_t`` occurrences per task per round); ``"phase"`` — each
        entry is a single phase firing (``q_t·ϕ(t)`` occurrences).
        Phase granularity is strictly more permissive: some live CSDFGs
        (the paper's Figure 2 among them!) admit *no* iteration-granular
        sequential order because their liveness depends on interleaving
        phases of different tasks.
    """

    assignment: Dict[str, str] = field(default_factory=dict)
    orders: Dict[str, List[str]] = field(default_factory=dict)
    granularity: str = "iteration"

    def processors(self) -> List[str]:
        seen: List[str] = []
        for proc in self.assignment.values():
            if proc not in seen:
                seen.append(proc)
        return seen

    def tasks_on(self, processor: str) -> List[str]:
        return [t for t, p in self.assignment.items() if p == processor]

    def validate(self, graph: CsdfGraph, repetition: Dict[str, int]) -> None:
        """Structural validation (PASS multiplicities, coverage).

        Raises :class:`ModelError` on: unmapped/unknown tasks, orders
        referencing foreign tasks, or occurrence counts differing from
        the granularity's requirement (``q_t`` iterations or ``q_t·ϕ(t)``
        phase firings per round).
        """
        if self.granularity not in ("iteration", "phase"):
            raise ModelError(
                f"unknown granularity {self.granularity!r} "
                "(use 'iteration' or 'phase')"
            )
        graph_tasks = set(graph.task_names())
        mapped = set(self.assignment)
        if mapped != graph_tasks:
            missing = graph_tasks - mapped
            extra = mapped - graph_tasks
            raise ModelError(
                f"mapping does not cover the graph exactly "
                f"(missing={sorted(missing)}, unknown={sorted(extra)})"
            )
        for proc in self.processors():
            order = self.orders.get(proc)
            if order is None:
                raise ModelError(f"processor {proc!r} has no static order")
            on_proc = set(self.tasks_on(proc))
            counts = Counter(order)
            if set(counts) != on_proc:
                raise ModelError(
                    f"order of processor {proc!r} covers {sorted(counts)} "
                    f"but its tasks are {sorted(on_proc)}"
                )
            for t in on_proc:
                expected = repetition[t]
                if self.granularity == "phase":
                    expected *= graph.task(t).phase_count
                if counts[t] != expected:
                    raise ModelError(
                        f"order of {proc!r} fires {t!r} {counts[t]}× per "
                        f"round but the {self.granularity} granularity "
                        f"requires {expected}"
                    )

    @staticmethod
    def single_processor(
        graph: CsdfGraph,
        order: List[str],
        processor: str = "cpu0",
    ) -> "Mapping":
        """Everything on one processor with the given order."""
        return Mapping(
            assignment={t: processor for t in graph.task_names()},
            orders={processor: list(order)},
        )

    @staticmethod
    def fully_parallel(graph: CsdfGraph) -> "Mapping":
        """One processor per task (no resource constraint at all)."""
        from repro.analysis.consistency import repetition_vector

        q = repetition_vector(graph)
        assignment = {}
        orders = {}
        for i, t in enumerate(graph.task_names()):
            proc = f"cpu{i}"
            assignment[t] = proc
            orders[proc] = [t] * q[t]
        return Mapping(assignment=assignment, orders=orders)
