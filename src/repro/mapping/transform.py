"""Encode a mapping as a graph transformation (scheduler tasks).

For a processor ``P`` with static order ``σ = [s_1 … s_m]`` (``m = Σ q_t``
over its tasks) the transformation adds:

* a zero-duration scheduler task ``__sched_P`` with ``m`` phases — phase
  ``j`` "runs" occurrence ``σ_j``;
* a **grant** buffer ``__sched_P → t`` per mapped task ``t``: scheduler
  phase ``j`` produces 1 token iff ``σ_j = t``; ``t`` consumes 1 token at
  its first phase (a task iteration needs the processor before it
  starts);
* a **release** buffer ``t → __sched_P``: ``t`` produces 1 token at its
  last phase; scheduler phase ``j`` consumes 1 token of ``σ_{j-1}``'s
  release (it hands the processor over only when the previous occupant
  finished). The wrap-around consumption (phase 1 waiting on ``σ_m``)
  is primed with one initial token so the first round can start.

The scheduler's repetition value is 1 (it fires ``m`` phases per graph
iteration = one full round of the order), so the transformed graph is
consistent by construction; liveness depends on whether the order is
*admissible* for the token distribution — exactly what the standard
analyses decide on the transformed graph.

Tasks alone on their processor are left untouched (the scheduler would
only re-state their serialization).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.consistency import repetition_vector
from repro.exceptions import ModelError
from repro.mapping.partition import Mapping
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task


def apply_mapping(
    graph: CsdfGraph,
    mapping: Mapping,
    *,
    repetition: Optional[Dict[str, int]] = None,
) -> CsdfGraph:
    """The mapped graph (original tasks/buffers + scheduler machinery).

    Examples
    --------
    >>> from repro.model import sdf
    >>> from repro.mapping import Mapping
    >>> g = sdf({"A": 1, "B": 1}, [("A", "B", 1, 1, 0)])
    >>> m = Mapping.single_processor(g, ["A", "B"])
    >>> mapped = apply_mapping(g, m)
    >>> mapped.has_task("__sched_cpu0")
    True
    """
    if repetition is None:
        repetition = repetition_vector(graph)
    mapping.validate(graph, repetition)

    mapped = graph.copy(f"{graph.name}@{len(mapping.processors())}proc")
    for proc in mapping.processors():
        order = mapping.orders[proc]
        tasks_here = mapping.tasks_on(proc)
        if len(tasks_here) == 1 and len(set(order)) == 1:
            continue  # serialization already enforces a 1-task order
        _add_scheduler(mapped, graph, proc, order, mapping.granularity)
    return mapped


def _add_scheduler(
    mapped: CsdfGraph,
    original: CsdfGraph,
    processor: str,
    order: List[str],
    granularity: str,
) -> None:
    """Scheduler task + grant/release channels for one processor.

    Iteration granularity: a grant covers one full task iteration
    (claimed at phase 1, released at phase ϕ). Phase granularity: every
    phase firing claims and releases its own grant (rates all-ones), so
    the order can interleave phases of different tasks.
    """
    m = len(order)
    sched_name = f"__sched_{processor}"
    if mapped.has_task(sched_name):
        raise ModelError(f"duplicate scheduler task {sched_name!r}")
    mapped.add_task(Task(sched_name, tuple([0] * m)))

    members = []
    for t in order:
        if t not in members:
            members.append(t)
    for t in members:
        phi = original.task(t).phase_count
        grant_production = tuple(
            1 if occupant == t else 0 for occupant in order
        )
        if granularity == "phase":
            grant_consumption = tuple([1] * phi)
            release_production = tuple([1] * phi)
        else:
            grant_consumption = tuple(
                1 if p == 0 else 0 for p in range(phi)
            )
            release_production = tuple(
                1 if p == phi - 1 else 0 for p in range(phi)
            )
        mapped.add_buffer(
            Buffer(
                name=f"__grant_{processor}_{t}",
                source=sched_name,
                target=t,
                production=grant_production,
                consumption=grant_consumption,
                initial_tokens=0,
            )
        )
        # release consumed by the scheduler phase *after* each occurrence
        release_consumption = [0] * m
        for j, occupant in enumerate(order):
            if occupant == t:
                release_consumption[(j + 1) % m] += 1
        mapped.add_buffer(
            Buffer(
                name=f"__release_{processor}_{t}",
                source=t,
                target=sched_name,
                production=release_production,
                consumption=tuple(release_consumption),
                initial_tokens=1 if order[m - 1] == t else 0,
            )
        )
