"""Finite buffer capacities as feedback arcs.

A buffer ``b = (t, t')`` with capacity ``c`` is modelled by adding the
reverse buffer ``b' = (t', t)`` carrying *free space*: the consumer
produces space with ``b``'s consumption vector when it completes, the
producer claims space with ``b``'s production vector when it starts, and
``M0(b') = c − M0(b)``.

This is exact for the consume-at-start/produce-at-end semantics used
throughout the library (the producer reserves its output space for the
whole firing). The transformation doubles the buffer count — compare the
``Buffers`` column of Table 2's two halves.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.exceptions import ModelError
from repro.model.graph import CsdfGraph


def bound_buffer(
    graph: CsdfGraph,
    buffer_name: str,
    capacity: int,
) -> CsdfGraph:
    """A copy of ``graph`` where one buffer has finite capacity.

    ``capacity`` must cover the initial marking; too small a capacity may
    deadlock the graph (detected by the analyses, not here).
    """
    buffer = graph.buffer(buffer_name)
    if capacity < buffer.initial_tokens:
        raise ModelError(
            f"capacity {capacity} of buffer {buffer_name!r} is below its "
            f"initial marking {buffer.initial_tokens}"
        )
    bounded = graph.copy(graph.name)
    bounded.add_buffer(
        buffer.reversed(
            name=f"__space_{buffer_name}",
            initial_tokens=capacity - buffer.initial_tokens,
        )
    )
    return bounded


def bound_all_buffers(
    graph: CsdfGraph,
    capacities: Union[int, Mapping[str, int]],
    *,
    skip_self_loops: bool = True,
) -> CsdfGraph:
    """A copy of ``graph`` with every (data) buffer capacity-bounded.

    Parameters
    ----------
    capacities:
        Either one uniform capacity or a per-buffer mapping. Uniform
        capacities below a buffer's structural minimum
        (:func:`minimal_buffer_capacity`) are raised to that minimum so
        the result is never *trivially* dead.
    skip_self_loops:
        Serialization-style self-loops model execution order, not
        storage; they are left unbounded by default.

    Examples
    --------
    >>> from repro.model import sdf
    >>> g = sdf({"A": 1, "B": 1}, [("A", "B", 2, 3, 0)])
    >>> bounded = bound_all_buffers(g, 6)
    >>> bounded.buffer("__space_A_B_0").initial_tokens
    6
    """
    bounded = graph.copy(graph.name)
    for b in graph.buffers():
        if skip_self_loops and b.is_self_loop():
            continue
        if isinstance(capacities, int):
            cap = max(capacities, minimal_buffer_capacity(b))
        else:
            if b.name not in capacities:
                continue
            cap = capacities[b.name]
        if cap < b.initial_tokens:
            raise ModelError(
                f"capacity {cap} of buffer {b.name!r} is below its "
                f"initial marking {b.initial_tokens}"
            )
        bounded.add_buffer(
            b.reversed(
                name=f"__space_{b.name}",
                initial_tokens=cap - b.initial_tokens,
            )
        )
    return bounded


def minimal_buffer_capacity(buffer) -> int:
    """A structural lower bound on a workable capacity.

    One firing must fit: the producer claims ``max_p in_b(p)`` space while
    the consumer may still hold unread tokens up to ``max_{p'} out_b(p')``;
    the initial marking must also fit.
    """
    return max(
        max(buffer.production) + max(buffer.consumption),
        buffer.initial_tokens,
    )
