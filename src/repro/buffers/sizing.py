"""Throughput / storage trade-off exploration.

The buffer-sizing companion problem (the paper's reference [16] explores
it exhaustively): how does the maximum throughput degrade as buffer
capacities shrink? The helpers here sweep a uniform capacity scale and
binary-search the smallest scale that preserves liveness or a target
throughput — they power the ``buffer_sizing`` example and one ablation
bench.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.buffers.capacity import bound_all_buffers, minimal_buffer_capacity
from repro.dse.session import DseSession
from repro.exceptions import DeadlockError, ModelError
from repro.kperiodic.kiter import throughput_kiter
from repro.model.graph import CsdfGraph


def _capacities_at_scale(graph: CsdfGraph, scale: int) -> Dict[str, int]:
    """Per-buffer capacity ``scale × structural minimum``."""
    return {
        b.name: scale * minimal_buffer_capacity(b)
        for b in graph.buffers()
        if not b.is_self_loop()
    }


def throughput_storage_curve(
    graph: CsdfGraph,
    scales: List[int],
    *,
    engine: str = "ratio-iteration",
) -> List[Tuple[int, Optional[Fraction]]]:
    """Exact throughput at each uniform capacity scale.

    Returns ``(scale, throughput)`` pairs; throughput is ``None`` when the
    scaled capacities deadlock the graph. The curve is non-decreasing in
    the scale (checked by a property test — capacity monotonicity).
    """
    curve: List[Tuple[int, Optional[Fraction]]] = []
    # One DseSession for the whole curve: each scale step is a batch of
    # space-buffer marking edits, so only the touched blocks recompute
    # and monotone shrinks keep the previous λ* as the engine seed.
    session: Optional[DseSession] = None
    for scale in scales:
        if scale < 1:
            raise ModelError(f"capacity scale must be ≥ 1, got {scale}")
        caps = _capacities_at_scale(graph, scale)
        if session is None:
            session = DseSession(bound_all_buffers(graph, caps),
                                 engine=engine)
        else:
            session.set_capacities(caps)
        try:
            curve.append((scale, session.solve().throughput))
        except DeadlockError:
            curve.append((scale, None))
    return curve


def minimize_total_storage(
    graph: CsdfGraph,
    *,
    target_throughput: Optional[Fraction] = None,
    engine: str = "ratio-iteration",
    max_scale: int = 64,
) -> Dict[str, int]:
    """Per-buffer capacities meeting a throughput target, locally minimal.

    The throughput-buffering trade-off of [Stuijk et al. TC'08]
    (the paper's reference [16]), made practical by K-Iter's speed:

    1. find a uniform scale meeting the target (binary search — valid
       by capacity monotonicity);
    2. shrink each buffer independently by binary search down to the
       smallest capacity that still meets the target with every other
       buffer held at its current value;
    3. repeat the sweep until a full pass shrinks nothing (a local
       minimum of total storage: no *single* buffer can shrink further).

    ``target_throughput=None`` targets the unbounded-buffer optimum.
    Returns the capacity map (structural minima as hard floors).

    Note: like all single-coordinate descent, the result is locally —
    not globally — minimal; the test suite pins local minimality.
    """
    if target_throughput is None:
        unbounded = throughput_kiter(graph, engine=engine)
        if unbounded.throughput is None:
            raise ModelError(
                "unbounded throughput is infinite; give an explicit "
                "target_throughput"
            )
        target_throughput = unbounded.throughput

    floors = {
        b.name: minimal_buffer_capacity(b)
        for b in graph.buffers()
        if not b.is_self_loop()
    }
    start_scale = minimal_feasible_scale(
        graph,
        max_scale=max_scale,
        predicate=lambda th: th is not None and th >= target_throughput,
        engine=engine,
    )
    caps = {name: start_scale * floor for name, floor in floors.items()}

    # One sticky session across the whole descent: each probe edits a
    # single buffer's capacity, so every other buffer's expansion
    # blocks — and, on shrinking probes, the previous λ* seed — carry
    # over. The bench gate (benchmarks/bench_dse.py) pins this sweep
    # ≥5x over the same probes solved cold.
    session = DseSession(bound_all_buffers(graph, caps), engine=engine)

    def meets(trial: Dict[str, int]) -> bool:
        session.set_capacities(trial)
        try:
            th = session.solve().throughput
        except DeadlockError:
            return False
        return th is not None and th >= target_throughput

    assert meets(caps)

    improved = True
    while improved:
        improved = False
        for name in caps:
            lo, hi = floors[name], caps[name]
            if lo >= hi:
                continue
            # smallest value in [lo, hi] keeping the target (monotone)
            while lo < hi:
                mid = (lo + hi) // 2
                trial = dict(caps)
                trial[name] = mid
                if meets(trial):
                    hi = mid
                else:
                    lo = mid + 1
            if hi < caps[name]:
                caps[name] = hi
                improved = True
    return caps


def minimal_feasible_scale(
    graph: CsdfGraph,
    *,
    max_scale: int = 4096,
    predicate: Optional[Callable[[Optional[Fraction]], bool]] = None,
    engine: str = "ratio-iteration",
) -> int:
    """Smallest uniform capacity scale meeting ``predicate``.

    ``predicate`` receives the exact throughput (``None`` for deadlock)
    and defaults to plain liveness. Monotonicity of throughput in
    capacity makes binary search valid.

    Raises :class:`ModelError` when even ``max_scale`` fails.
    """
    if predicate is None:
        predicate = lambda th: th is not None  # noqa: E731 - tiny default

    session = DseSession(
        bound_all_buffers(graph, _capacities_at_scale(graph, 1)),
        engine=engine,
    )

    def ok(scale: int) -> bool:
        session.set_capacities(_capacities_at_scale(graph, scale))
        try:
            th = session.solve().throughput
        except DeadlockError:
            th = None
        return predicate(th)

    if not ok(max_scale):
        raise ModelError(
            f"predicate unmet even at capacity scale {max_scale}"
        )
    lo, hi = 1, max_scale
    while lo < hi:
        mid = (lo + hi) // 2
        if ok(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo
