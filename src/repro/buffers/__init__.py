"""Bounded-buffer modelling and sizing.

* :mod:`repro.buffers.capacity` — the classical feedback-arc encoding of
  finite buffer capacities (Table 2's "fixed buffer size" rows).
* :mod:`repro.buffers.sizing` — throughput/storage trade-off exploration.
"""

from repro.buffers.capacity import bound_all_buffers, bound_buffer
from repro.buffers.sizing import (
    minimal_feasible_scale,
    minimize_total_storage,
    throughput_storage_curve,
)

__all__ = [
    "bound_all_buffers",
    "bound_buffer",
    "minimal_feasible_scale",
    "minimize_total_storage",
    "throughput_storage_curve",
]
