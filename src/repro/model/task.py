"""Tasks (actors) of a CSDF graph.

A task ``t`` is decomposed into ``ϕ(t)`` *phases*; one *iteration* of the
task is the ordered execution of phases ``t_1 … t_{ϕ(t)}``. Each phase has a
constant non-negative integer duration ``d(t_p)``. The ``n``-th execution of
phase ``p`` is written ``⟨t_p, n⟩`` in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.exceptions import ModelError


@dataclass(frozen=True)
class Task:
    """An actor with cyclo-static phase durations.

    Parameters
    ----------
    name:
        Unique identifier within a graph.
    durations:
        One integer duration per phase; its length defines ``ϕ(t)``.
        Durations may be 0 (useful for untimed liveness analysis) but not
        negative.

    Examples
    --------
    >>> a = Task("A", (1, 1))
    >>> a.phase_count
    2
    >>> a.iteration_duration
    2
    """

    name: str
    durations: Tuple[int, ...] = field(default=(1,))

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be a non-empty string")
        durations = tuple(int(d) for d in self.durations)
        if not durations:
            raise ModelError(f"task {self.name!r} must have at least one phase")
        if any(d < 0 for d in durations):
            raise ModelError(
                f"task {self.name!r} has a negative phase duration: {durations}"
            )
        object.__setattr__(self, "durations", durations)

    @property
    def phase_count(self) -> int:
        """``ϕ(t)`` — the number of phases of one iteration."""
        return len(self.durations)

    @property
    def iteration_duration(self) -> int:
        """Total busy time of one iteration, ``Σ_p d(t_p)``."""
        return sum(self.durations)

    def duration(self, phase: int) -> int:
        """Duration ``d(t_p)`` of 1-based phase ``p``."""
        self._check_phase(phase)
        return self.durations[phase - 1]

    def is_sdf(self) -> bool:
        """True when the task has a single phase (SDF actor)."""
        return self.phase_count == 1

    def with_durations(self, durations: Sequence[int]) -> "Task":
        """A copy of this task with different phase durations."""
        return Task(self.name, tuple(durations))

    def _check_phase(self, phase: int) -> None:
        if not 1 <= phase <= self.phase_count:
            raise ModelError(
                f"phase {phase} out of range 1..{self.phase_count} "
                f"for task {self.name!r}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name}, d={list(self.durations)})"
