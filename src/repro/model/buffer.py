"""Buffers (channels/arcs) of a CSDF graph.

A buffer ``b = (t, t')`` is an unbounded FIFO from producer ``t`` to
consumer ``t'`` holding ``M0(b)`` initial tokens. At the *end* of an
execution of phase ``t_p``, ``in_b(p)`` tokens are written; *before* an
execution of phase ``t'_{p'}`` starts, ``out_b(p')`` tokens are read.

``i_b = Σ_p in_b(p)`` and ``o_b = Σ_{p'} out_b(p')`` are the per-iteration
totals used by the consistency condition ``q_t·i_b = q_{t'}·o_b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Tuple

from repro.exceptions import ModelError


@dataclass(frozen=True)
class Buffer:
    """A cyclo-static channel.

    Parameters
    ----------
    name:
        Unique identifier within a graph.
    source, target:
        Producer / consumer task names. ``source == target`` models a
        self-loop (used e.g. to forbid auto-concurrency).
    production:
        ``in_b``: tokens written per producer phase (length ``ϕ(source)``).
    consumption:
        ``out_b``: tokens read per consumer phase (length ``ϕ(target)``).
    initial_tokens:
        ``M0(b) ≥ 0``.

    Examples
    --------
    The paper's Figure 1 buffer:

    >>> b = Buffer("b", "t", "t2", (2, 3, 1), (2, 5), 0)
    >>> b.total_production, b.total_consumption
    (6, 7)
    """

    name: str
    source: str
    target: str
    production: Tuple[int, ...]
    consumption: Tuple[int, ...]
    initial_tokens: int = 0
    serialization: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        production = tuple(int(r) for r in self.production)
        consumption = tuple(int(r) for r in self.consumption)
        if not production or not consumption:
            raise ModelError(f"buffer {self.name!r} has an empty rate vector")
        if any(r < 0 for r in production) or any(r < 0 for r in consumption):
            raise ModelError(f"buffer {self.name!r} has negative rates")
        if sum(production) == 0 or sum(consumption) == 0:
            raise ModelError(
                f"buffer {self.name!r} never produces or never consumes; "
                "remove the channel instead"
            )
        if self.initial_tokens < 0:
            raise ModelError(
                f"buffer {self.name!r} has negative initial marking "
                f"{self.initial_tokens}"
            )
        object.__setattr__(self, "production", production)
        object.__setattr__(self, "consumption", consumption)
        object.__setattr__(self, "initial_tokens", int(self.initial_tokens))

    # ------------------------------------------------------------------
    # Totals and prefix sums (the paper's i_b, o_b, Ia, Oa)
    # ------------------------------------------------------------------
    @property
    def total_production(self) -> int:
        """``i_b`` — tokens produced by one full iteration of the source."""
        return sum(self.production)

    @property
    def total_consumption(self) -> int:
        """``o_b`` — tokens consumed by one full iteration of the target."""
        return sum(self.consumption)

    @property
    def rate_gcd(self) -> int:
        """``gcd_b = gcd(i_b, o_b)`` used by Theorem 2's rounding."""
        return gcd(self.total_production, self.total_consumption)

    def produced_upto(self, phase: int, n: int = 1) -> int:
        """``Ia⟨t_p, n⟩ = Σ_{α≤p} in_b(α) + (n−1)·i_b``.

        Total tokens written into the buffer at the completion of the
        ``n``-th execution of producer phase ``p`` (1-based).
        """
        self._check_producer_phase(phase)
        if n < 1:
            raise ModelError(f"execution index must be ≥ 1, got {n}")
        return sum(self.production[:phase]) + (n - 1) * self.total_production

    def consumed_upto(self, phase: int, n: int = 1) -> int:
        """``Oa⟨t'_{p'}, n'⟩ = Σ_{α≤p'} out_b(α) + (n'−1)·o_b``."""
        self._check_consumer_phase(phase)
        if n < 1:
            raise ModelError(f"execution index must be ≥ 1, got {n}")
        return sum(self.consumption[:phase]) + (n - 1) * self.total_consumption

    def is_self_loop(self) -> bool:
        return self.source == self.target

    def reversed(self, name: str, initial_tokens: int) -> "Buffer":
        """The reverse channel used by the bounded-buffer transformation.

        The consumer *frees space* (produces into the reverse buffer) with
        its consumption vector, and the producer *claims space* with its
        production vector.
        """
        return Buffer(
            name=name,
            source=self.target,
            target=self.source,
            production=self.consumption,
            consumption=self.production,
            initial_tokens=initial_tokens,
        )

    def _check_producer_phase(self, phase: int) -> None:
        if not 1 <= phase <= len(self.production):
            raise ModelError(
                f"producer phase {phase} out of range 1..{len(self.production)} "
                f"for buffer {self.name!r}"
            )

    def _check_consumer_phase(self, phase: int) -> None:
        if not 1 <= phase <= len(self.consumption):
            raise ModelError(
                f"consumer phase {phase} out of range 1..{len(self.consumption)} "
                f"for buffer {self.name!r}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Buffer({self.name}: {self.source}->{self.target}, "
            f"in={list(self.production)}, out={list(self.consumption)}, "
            f"M0={self.initial_tokens})"
        )
