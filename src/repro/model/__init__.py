"""CSDF/SDF graph data model.

A :class:`~repro.model.graph.CsdfGraph` is a directed multigraph whose nodes
are :class:`~repro.model.task.Task` objects (each decomposed into phases with
integer durations) and whose arcs are :class:`~repro.model.buffer.Buffer`
objects (unbounded FIFO channels with cyclo-static production/consumption
rate vectors and an initial marking).

A Synchronous Dataflow Graph (SDF) is the 1-phase special case; the
:func:`~repro.model.builder.sdf` builder produces it directly.
"""

from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task
from repro.model.builder import GraphBuilder, build_graph, csdf, sdf, hsdf

__all__ = [
    "Buffer",
    "CsdfGraph",
    "Task",
    "GraphBuilder",
    "build_graph",
    "csdf",
    "sdf",
    "hsdf",
]
