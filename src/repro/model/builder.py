"""Convenience builders for CSDF/SDF graphs.

Three entry points:

* :func:`csdf` / :func:`sdf` / :func:`hsdf` — build a graph from plain dicts
  and tuples in one call (used pervasively by tests and examples);
* :class:`GraphBuilder` — an incremental fluent builder;
* :func:`build_graph` — the generic form both delegate to.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from repro.exceptions import ModelError
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task

Rates = Union[int, Sequence[int]]
# (source, target, production, consumption, initial_tokens)
EdgeSpec = Tuple[str, str, Rates, Rates, int]


def _as_rate_vector(rates: Rates, phases: int, what: str) -> Tuple[int, ...]:
    """Normalize an int or sequence into a phase-length rate tuple.

    An int ``r`` means "rate r at every phase", matching SDF shorthand.
    """
    if isinstance(rates, int):
        return tuple([rates] * phases)
    vec = tuple(int(r) for r in rates)
    if len(vec) != phases:
        raise ModelError(
            f"{what}: rate vector {list(vec)} has {len(vec)} entries, "
            f"expected {phases}"
        )
    return vec


def build_graph(
    name: str,
    tasks: Mapping[str, Rates],
    edges: Iterable[EdgeSpec],
) -> CsdfGraph:
    """Build a graph from a task→durations mapping and edge tuples.

    Parameters
    ----------
    tasks:
        Maps each task name to its phase durations. An int means a
        single-phase task with that duration.
    edges:
        Tuples ``(src, dst, production, consumption, initial_tokens)``.
        Rate entries may be ints (replicated over phases) or sequences.

    Examples
    --------
    >>> g = build_graph(
    ...     "pipeline",
    ...     {"A": 1, "B": [1, 2]},
    ...     [("A", "B", 3, [1, 2], 0)],
    ... )
    >>> g.buffer("A_B_0").production
    (3,)
    """
    g = CsdfGraph(name)
    for tname, durations in tasks.items():
        if isinstance(durations, int):
            durations = (durations,)
        g.add_task(Task(tname, tuple(durations)))
    counters: Dict[Tuple[str, str], int] = {}
    for spec in edges:
        if len(spec) != 5:
            raise ModelError(
                f"edge spec must be (src, dst, prod, cons, M0), got {spec!r}"
            )
        src, dst, prod, cons, m0 = spec
        idx = counters.get((src, dst), 0)
        counters[(src, dst)] = idx + 1
        bname = f"{src}_{dst}_{idx}"
        prod_vec = _as_rate_vector(prod, g.phase_count(src), f"buffer {bname}")
        cons_vec = _as_rate_vector(cons, g.phase_count(dst), f"buffer {bname}")
        g.add_buffer(Buffer(bname, src, dst, prod_vec, cons_vec, int(m0)))
    return g


def csdf(
    tasks: Mapping[str, Rates],
    edges: Iterable[EdgeSpec],
    name: str = "csdfg",
) -> CsdfGraph:
    """Shorthand for :func:`build_graph` with the arguments reordered."""
    return build_graph(name, tasks, edges)


def sdf(
    tasks: Mapping[str, int],
    edges: Iterable[Tuple[str, str, int, int, int]],
    name: str = "sdfg",
) -> CsdfGraph:
    """Build an SDF graph (every task single-phase, scalar rates).

    Examples
    --------
    >>> g = sdf({"A": 2, "B": 3}, [("A", "B", 2, 1, 0)])
    >>> g.is_sdf()
    True
    """
    task_map: Dict[str, Rates] = {}
    for tname, duration in tasks.items():
        if not isinstance(duration, int):
            raise ModelError(
                f"sdf() takes scalar durations; task {tname!r} got {duration!r}"
            )
        task_map[tname] = (duration,)
    return build_graph(name, task_map, edges)


def hsdf(
    tasks: Mapping[str, int],
    edges: Iterable[Tuple[str, str, int]],
    name: str = "hsdfg",
) -> CsdfGraph:
    """Build a homogeneous SDF graph: edges are ``(src, dst, tokens)``."""
    full_edges = [(src, dst, 1, 1, m0) for (src, dst, m0) in edges]
    return sdf(tasks, full_edges, name=name)


class GraphBuilder:
    """Fluent incremental builder.

    Examples
    --------
    >>> g = (GraphBuilder("g")
    ...      .task("A", [1, 1])
    ...      .task("B", [2])
    ...      .buffer("A", "B", [1, 2], [3], tokens=1)
    ...      .build())
    >>> g.task_count
    2
    """

    def __init__(self, name: str = "csdfg"):
        self._graph = CsdfGraph(name)
        self._edge_counters: Dict[Tuple[str, str], int] = {}
        self._built = False

    def task(self, name: str, durations: Rates = 1) -> "GraphBuilder":
        if isinstance(durations, int):
            durations = (durations,)
        self._graph.add_task(Task(name, tuple(durations)))
        return self

    def buffer(
        self,
        source: str,
        target: str,
        production: Rates,
        consumption: Rates,
        tokens: int = 0,
        name: str | None = None,
    ) -> "GraphBuilder":
        idx = self._edge_counters.get((source, target), 0)
        self._edge_counters[(source, target)] = idx + 1
        bname = name or f"{source}_{target}_{idx}"
        prod = _as_rate_vector(
            production, self._graph.phase_count(source), f"buffer {bname}"
        )
        cons = _as_rate_vector(
            consumption, self._graph.phase_count(target), f"buffer {bname}"
        )
        self._graph.add_buffer(Buffer(bname, source, target, prod, cons, tokens))
        return self

    def build(self) -> CsdfGraph:
        if self._built:
            raise ModelError("GraphBuilder.build() called twice")
        self._built = True
        return self._graph
