"""The CSDF graph container.

``CsdfGraph`` is deliberately a plain container with validation: all the
analyses (consistency, liveness, throughput) live in :mod:`repro.analysis`,
:mod:`repro.kperiodic` and :mod:`repro.baselines` and take a graph as input.

The container checks, at insertion time, that rate-vector lengths match the
phase counts of the endpoint tasks — the single most common modelling
mistake with CSDF.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ModelError
from repro.model.buffer import Buffer
from repro.model.task import Task

#: Schema tag shared with :mod:`repro.io.json_format`.
DICT_FORMAT_TAG = "repro-csdf"
DICT_FORMAT_VERSION = 1


class CsdfGraph:
    """A directed multigraph of :class:`Task` nodes and :class:`Buffer` arcs.

    Examples
    --------
    >>> g = CsdfGraph("two-stage")
    >>> g.add_task(Task("A", (1,)))
    >>> g.add_task(Task("B", (2,)))
    >>> g.add_buffer(Buffer("ab", "A", "B", (2,), (1,), 0))
    >>> g.task_count, g.buffer_count
    (2, 1)
    """

    def __init__(self, name: str = "csdfg"):
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._buffers: Dict[str, Buffer] = {}
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> None:
        """Insert a task; its name must be fresh."""
        if task.name in self._tasks:
            raise ModelError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._out[task.name] = []
        self._in[task.name] = []

    def add_buffer(self, buffer: Buffer) -> None:
        """Insert a buffer; endpoints must exist and rate lengths match."""
        if buffer.name in self._buffers:
            raise ModelError(f"duplicate buffer name {buffer.name!r}")
        src = self._tasks.get(buffer.source)
        dst = self._tasks.get(buffer.target)
        if src is None:
            raise ModelError(
                f"buffer {buffer.name!r} references unknown source task "
                f"{buffer.source!r}"
            )
        if dst is None:
            raise ModelError(
                f"buffer {buffer.name!r} references unknown target task "
                f"{buffer.target!r}"
            )
        if len(buffer.production) != src.phase_count:
            raise ModelError(
                f"buffer {buffer.name!r}: production vector has "
                f"{len(buffer.production)} entries but task {src.name!r} has "
                f"{src.phase_count} phases"
            )
        if len(buffer.consumption) != dst.phase_count:
            raise ModelError(
                f"buffer {buffer.name!r}: consumption vector has "
                f"{len(buffer.consumption)} entries but task {dst.name!r} has "
                f"{dst.phase_count} phases"
            )
        self._buffers[buffer.name] = buffer
        self._out[buffer.source].append(buffer.name)
        self._in[buffer.target].append(buffer.name)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def task_count(self) -> int:
        return len(self._tasks)

    @property
    def buffer_count(self) -> int:
        return len(self._buffers)

    def tasks(self) -> Iterator[Task]:
        """Tasks in insertion order."""
        return iter(self._tasks.values())

    def task_names(self) -> List[str]:
        return list(self._tasks)

    def buffers(self) -> Iterator[Buffer]:
        """Buffers in insertion order."""
        return iter(self._buffers.values())

    def buffer_names(self) -> List[str]:
        return list(self._buffers)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise ModelError(f"unknown task {name!r}") from None

    def buffer(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise ModelError(f"unknown buffer {name!r}") from None

    def has_task(self, name: str) -> bool:
        return name in self._tasks

    def has_buffer(self, name: str) -> bool:
        return name in self._buffers

    def out_buffers(self, task_name: str) -> List[Buffer]:
        """Buffers produced by ``task_name`` (insertion order)."""
        self.task(task_name)
        return [self._buffers[b] for b in self._out[task_name]]

    def in_buffers(self, task_name: str) -> List[Buffer]:
        """Buffers consumed by ``task_name`` (insertion order)."""
        self.task(task_name)
        return [self._buffers[b] for b in self._in[task_name]]

    def phase_count(self, task_name: str) -> int:
        return self.task(task_name).phase_count

    def total_phase_count(self) -> int:
        """``Σ_t ϕ(t)`` — node count of the K=1 constraint graph."""
        return sum(t.phase_count for t in self.tasks())

    def is_sdf(self) -> bool:
        """True when every task has a single phase (SDF special case)."""
        return all(t.is_sdf() for t in self.tasks())

    def is_hsdf(self) -> bool:
        """True for homogeneous SDF: single-phase and all rates equal 1."""
        return self.is_sdf() and all(
            b.production == (1,) and b.consumption == (1,) for b in self.buffers()
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "CsdfGraph":
        """A shallow structural copy (tasks/buffers are immutable)."""
        g = CsdfGraph(name or self.name)
        for t in self.tasks():
            g.add_task(t)
        for b in self.buffers():
            g.add_buffer(b)
        return g

    def with_serialization_loops(self) -> "CsdfGraph":
        """A copy where every task has an all-ones self-loop with one token.

        The self-loop forbids auto-concurrency and forces the phases of a
        task to execute in order: exactly the semantics assumed by the
        paper's schedules (the token is returned when a phase completes and
        claimed by the next phase). The loop is added even when a task has
        custom self-loops — constraints compose, and the event simulator
        enforces one-firing-at-a-time unconditionally, so analysis and
        simulation must agree. Only an already-present ``__serial_`` loop
        (idempotent call) is skipped.
        """
        g = self.copy(self.name)
        for t in self.tasks():
            if g.has_buffer(f"__serial_{t.name}"):
                continue
            ones = tuple([1] * t.phase_count)
            loop = Buffer(
                name=f"__serial_{t.name}",
                source=t.name,
                target=t.name,
                production=ones,
                consumption=ones,
                initial_tokens=1,
                serialization=True,
            )
            g.add_buffer(loop)
        return g

    def without_serialization_loops(self) -> "CsdfGraph":
        """Inverse of :meth:`with_serialization_loops` (drops flagged loops)."""
        g = CsdfGraph(self.name)
        for t in self.tasks():
            g.add_task(t)
        for b in self.buffers():
            if not b.serialization:
                g.add_buffer(b)
        return g

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self, *, canonical: bool = False) -> Dict[str, Any]:
        """Plain-dict form of the graph (the native JSON schema).

        With ``canonical=True`` tasks are sorted by name and buffers by
        their structural content, so two graphs that differ only in
        insertion order serialize identically — the property the service
        layer's content-addressed digests rely on. ``canonical=False``
        preserves insertion order (diff-friendly, matches the historical
        on-disk files).

        Examples
        --------
        >>> g = CsdfGraph("g")
        >>> g.add_task(Task("B", (1,)))
        >>> g.add_task(Task("A", (2,)))
        >>> [t["name"] for t in g.to_dict()["tasks"]]
        ['B', 'A']
        >>> [t["name"] for t in g.to_dict(canonical=True)["tasks"]]
        ['A', 'B']
        """
        tasks = [
            {"name": t.name, "durations": list(t.durations)}
            for t in self.tasks()
        ]
        buffers = []
        for b in self.buffers():
            entry: Dict[str, Any] = {
                "name": b.name,
                "source": b.source,
                "target": b.target,
                "production": list(b.production),
                "consumption": list(b.consumption),
                "initial_tokens": b.initial_tokens,
            }
            if b.serialization:
                entry["serialization"] = True
            buffers.append(entry)
        if canonical:
            tasks.sort(key=lambda t: t["name"])
            buffers.sort(
                key=lambda e: (
                    e["source"], e["target"], e["production"],
                    e["consumption"], e["initial_tokens"], e["name"],
                )
            )
        return {
            "format": DICT_FORMAT_TAG,
            "version": DICT_FORMAT_VERSION,
            "name": self.name,
            "tasks": tasks,
            "buffers": buffers,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CsdfGraph":
        """Inverse of :meth:`to_dict` (validates the schema tag)."""
        fmt = payload.get("format", DICT_FORMAT_TAG)
        if fmt != DICT_FORMAT_TAG:
            raise ModelError(
                f"not a {DICT_FORMAT_TAG} document (format={fmt!r})"
            )
        version = payload.get("version", DICT_FORMAT_VERSION)
        if version != DICT_FORMAT_VERSION:
            raise ModelError(f"unsupported version {version!r}")
        graph = cls(payload.get("name", "csdfg"))
        for t in payload.get("tasks", []):
            graph.add_task(Task(t["name"], tuple(t["durations"])))
        for b in payload.get("buffers", []):
            graph.add_buffer(
                Buffer(
                    name=b["name"],
                    source=b["source"],
                    target=b["target"],
                    production=tuple(b["production"]),
                    consumption=tuple(b["consumption"]),
                    initial_tokens=b.get("initial_tokens", 0),
                    serialization=b.get("serialization", False),
                )
            )
        return graph

    # ------------------------------------------------------------------
    # Dunder / reporting
    # ------------------------------------------------------------------
    def __contains__(self, task_name: str) -> bool:
        return task_name in self._tasks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CsdfGraph({self.name!r}, tasks={self.task_count}, "
            f"buffers={self.buffer_count})"
        )

    def summary(self) -> str:
        """A short human-readable description used by examples and benches."""
        lines = [f"graph {self.name}: {self.task_count} tasks, "
                 f"{self.buffer_count} buffers"]
        for t in self.tasks():
            lines.append(f"  task {t.name}: d={list(t.durations)}")
        for b in self.buffers():
            lines.append(
                f"  buffer {b.name}: {b.source}->{b.target} "
                f"in={list(b.production)} out={list(b.consumption)} "
                f"M0={b.initial_tokens}"
            )
        return "\n".join(lines)
