"""repro — exact and fast throughput evaluation of Cyclo-Static Dataflow.

A full reproduction of *"Optimal and fast throughput evaluation of CSDF"*
(Bodin, Munier-Kordon, Dupont de Dinechin — DAC 2016): the **K-Iter**
algorithm with every substrate it needs, the baselines it is compared
against, and the benchmark harness regenerating the paper's tables.

Quickstart
----------
>>> from repro import sdf, throughput_kiter
>>> g = sdf({"A": 1, "B": 2},
...         [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)])
>>> throughput_kiter(g).period is not None
True

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper → module map.
"""

from repro.analysis import (
    build_constraint_graph,
    is_consistent,
    is_live,
    repetition_vector,
    repetition_vector_sum,
)
from repro.baselines import (
    throughput_expansion,
    throughput_periodic,
    throughput_symbolic,
)
from repro.buffers import (
    bound_all_buffers,
    bound_buffer,
    throughput_storage_curve,
)
from repro.exceptions import (
    BudgetExceededError,
    DeadlockError,
    InconsistentGraphError,
    ModelError,
    ReproError,
    SolverError,
)
from repro.kperiodic import (
    KIterResult,
    KPeriodicResult,
    KPeriodicSchedule,
    expand_graph,
    min_period_for_k,
    throughput_kiter,
)
from repro.model import (
    Buffer,
    CsdfGraph,
    GraphBuilder,
    Task,
    build_graph,
    csdf,
    hsdf,
    sdf,
)
from repro.scheduling import asap_schedule, render_gantt
from repro.service import (
    JobOutcome,
    ResultCache,
    SolverPool,
    ThroughputJob,
    ThroughputService,
    graph_digest,
)

__version__ = "1.0.0"

__all__ = [
    # model
    "Buffer",
    "CsdfGraph",
    "GraphBuilder",
    "Task",
    "build_graph",
    "csdf",
    "hsdf",
    "sdf",
    # analysis
    "build_constraint_graph",
    "is_consistent",
    "is_live",
    "repetition_vector",
    "repetition_vector_sum",
    # core algorithm
    "KIterResult",
    "KPeriodicResult",
    "KPeriodicSchedule",
    "expand_graph",
    "min_period_for_k",
    "throughput_kiter",
    # baselines
    "throughput_expansion",
    "throughput_periodic",
    "throughput_symbolic",
    # buffers
    "bound_all_buffers",
    "bound_buffer",
    "throughput_storage_curve",
    # scheduling
    "asap_schedule",
    "render_gantt",
    # service layer
    "JobOutcome",
    "ResultCache",
    "SolverPool",
    "ThroughputJob",
    "ThroughputService",
    "graph_digest",
    # errors
    "BudgetExceededError",
    "DeadlockError",
    "InconsistentGraphError",
    "ModelError",
    "ReproError",
    "SolverError",
    "__version__",
]
