"""Exact CSDF→HSDF unfolding at phase-execution granularity.

The CSDF generalization of the classical SDF expansion [10]: one HSDF
node per phase execution ``⟨t_p, n⟩`` of one graph iteration
(``Σ_t q_t·ϕ(t)`` nodes), precedence arcs from cumulative token counts,
iteration-delay markings for dependencies that reach into previous
iterations. The maximum cycle ratio of the unfolding (cost = producer
phase duration, transit = delay) is the exact period — a third
independent exact engine next to K-Iter and symbolic execution, used by
the cross-validation tests and available as a baseline.

Derivation of the arc for consumer execution ``(p', n')``:

* the execution needs cumulative production ``≥ W = Oa⟨t'_{p'},n'⟩ − M0``;
* with ``V = q_src·i_b`` tokens per graph iteration, the threshold is
  crossed during iteration ``σ = ⌊(W − 1)/V⌋`` (negative σ: covered by
  initial tokens until the pattern catches up) at the first in-iteration
  execution ``j*`` whose cumulative count reaches ``W − σ·V``;
* the marked-graph arc carries ``m = −σ ≥ 0`` delay tokens (consistency
  bounds ``W ≤ V``, so σ ≤ 0 always).

``reduced=True`` drops arcs dominated through the consumer's
serialization chain (same producer execution and delay as the previous
consumer execution), mirroring the SDF baseline's reduction.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.analysis.consistency import repetition_vector
from repro.mcrp.graph import BiValuedGraph
from repro.mcrp.ratio_iteration import max_cycle_ratio
from repro.model.graph import CsdfGraph

NodeKey = Tuple[str, int, int]  # (task, phase, execution n) — all 1-based


def unfold_csdf_to_hsdf(
    graph: CsdfGraph,
    *,
    reduced: bool = True,
    repetition: Optional[Dict[str, int]] = None,
    iterations: int = 1,
) -> Tuple[BiValuedGraph, Dict[NodeKey, int]]:
    """Unfold ``iterations`` graph iterations into a bi-valued HSDF graph.

    ``iterations > 1`` multiplies the repetition vector — useful to
    verify empirically that single-iteration granularity already yields
    the exact period (the paper's ``K = q`` optimality claim; pinned by
    a test sweeping ``iterations``).
    """
    if repetition is None:
        repetition = repetition_vector(graph)
    if iterations < 1:
        raise ValueError(f"iterations must be ≥ 1, got {iterations}")
    if iterations > 1:
        repetition = {t: n * iterations for t, n in repetition.items()}

    node_index: Dict[NodeKey, int] = {}
    labels = []
    for t in graph.tasks():
        for n in range(1, repetition[t.name] + 1):
            for p in range(1, t.phase_count + 1):
                node_index[(t.name, p, n)] = len(labels)
                labels.append((t.name, p, n))
    hsdf = BiValuedGraph(len(labels), labels=labels)

    # serialization: chain all phase executions of a task in time order,
    # closing the iteration loop with one delay token.
    for t in graph.tasks():
        q_t = repetition[t.name]
        phi = t.phase_count
        sequence = [
            (p, n) for n in range(1, q_t + 1) for p in range(1, phi + 1)
        ]
        for (p, n), (p2, n2) in zip(sequence, sequence[1:]):
            hsdf.add_arc(
                node_index[(t.name, p, n)],
                node_index[(t.name, p2, n2)],
                t.duration(p),
                0,
            )
        last_p, last_n = sequence[-1]
        hsdf.add_arc(
            node_index[(t.name, last_p, last_n)],
            node_index[(t.name, 1, 1)],
            t.duration(last_p),
            1,
        )

    for b in graph.buffers():
        _unfold_buffer(graph, b, repetition, node_index, hsdf, reduced)
    return hsdf, node_index


def _unfold_buffer(graph, b, repetition, node_index, hsdf, reduced) -> None:
    q_src = repetition[b.source]
    q_dst = repetition[b.target]
    phi_p = len(b.production)
    phi_c = len(b.consumption)
    volume = q_src * b.total_production
    producer = graph.task(b.source)

    # in-iteration cumulative production after the j-th phase execution
    # (j = (n−1)·ϕ + p), and the (p, n) pair for each j.
    cumulative = []
    executions = []
    acc = 0
    for n in range(1, q_src + 1):
        for p in range(1, phi_p + 1):
            acc += b.production[p - 1]
            cumulative.append(acc)
            executions.append((p, n))
    assert acc == volume

    consumed = 0
    previous: Optional[Tuple[int, int]] = None
    for n_prime in range(1, q_dst + 1):
        for p_prime in range(1, phi_c + 1):
            consumed += b.consumption[p_prime - 1]
            threshold = consumed - b.initial_tokens  # W
            sigma = (threshold - 1) // volume        # floor((W−1)/V)
            inner = threshold - sigma * volume       # ∈ [1, V]
            j_star = bisect_left(cumulative, inner)
            if j_star >= len(cumulative):  # pragma: no cover - inner ≤ V
                raise AssertionError("threshold beyond one iteration")
            delay = -sigma
            if delay < 0:
                # consistency guarantees W ≤ V; a negative delay would
                # mean a first-iteration firing depending on the future.
                raise AssertionError("negative delay in unfolding")
            key = (j_star, delay)
            if reduced and key == previous:
                previous = key
                continue
            previous = key
            p, n = executions[j_star]
            hsdf.add_arc(
                node_index[(b.source, p, n)],
                node_index[(b.target, p_prime, n_prime)],
                producer.duration(p),
                delay,
            )


@dataclass
class UnfoldingResult:
    """Outcome of the unfolding method (exact for any live CSDFG)."""

    period: Fraction
    nodes: int
    arcs: int

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.period == 0:
            return None
        return Fraction(1, 1) / self.period


def throughput_unfolding(graph: CsdfGraph, *, reduced: bool = True) -> UnfoldingResult:
    """Exact CSDF throughput via full unfolding + maximum cycle ratio.

    Exponential-size like every expansion method — the baseline K-Iter
    renders obsolete — but exact, and a valuable independent oracle.

    Examples
    --------
    >>> from repro.generators.paper import figure2_graph
    >>> throughput_unfolding(figure2_graph()).period
    Fraction(13, 1)
    """
    hsdf, _ = unfold_csdf_to_hsdf(graph, reduced=reduced)
    result = max_cycle_ratio(hsdf)
    period = result.ratio if result.ratio is not None else Fraction(0)
    return UnfoldingResult(
        period=period, nodes=hsdf.node_count, arcs=hsdf.arc_count
    )
