"""The 1-periodic (strictly periodic) baseline — paper reference [4].

A 1-periodic schedule fixes one start time and one period per task. It is
the ``K ≡ 1`` special case of K-periodic scheduling, so the minimum
period is a single MCRP solve on the unexpanded constraint graph —
polynomial, but only an *over-approximation* of the optimal period
(Table 2's ``periodic`` column shows optimality drops to 33%/2%/N-S on
buffer-constrained graphs).

``N/S`` (no solution): with buffer bounds a graph can be live and still
admit **no** 1-periodic schedule; this surfaces as a
:class:`~repro.exceptions.DeadlockError` from the MCRP even though the
graph itself does not deadlock. :func:`throughput_periodic` converts that
into ``feasible=False`` rather than an exception when the graph is live.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.exceptions import DeadlockError
from repro.kperiodic.schedule import KPeriodicSchedule
from repro.kperiodic.solver import min_period_for_k


@dataclass
class PeriodicResult:
    """Outcome of the 1-periodic method.

    ``feasible=False`` is the paper's ``N/S``: no strictly periodic
    schedule exists (the graph may still be live and schedulable with
    K > 1).
    """

    feasible: bool
    period: Optional[Fraction] = None
    schedule: Optional[KPeriodicSchedule] = None

    @property
    def throughput(self) -> Optional[Fraction]:
        if not self.feasible or self.period is None or self.period == 0:
            return None
        return Fraction(1, 1) / self.period


def throughput_periodic(
    graph,
    *,
    engine: str = "ratio-iteration",
    build_schedule: bool = False,
) -> PeriodicResult:
    """Best throughput reachable by a strictly periodic schedule.

    Examples
    --------
    >>> from repro.model import sdf
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 2, 3, 0), ("B", "A", 3, 2, 6)])
    >>> throughput_periodic(g).period  # ≥ exact period by construction
    Fraction(4, 1)
    """
    K: Dict[str, int] = {t.name: 1 for t in graph.tasks()}
    try:
        result = min_period_for_k(
            graph, K, engine=engine, build_schedule=build_schedule
        )
    except DeadlockError:
        return PeriodicResult(feasible=False)
    return PeriodicResult(
        feasible=True,
        period=result.omega,
        schedule=result.schedule,
    )
