"""Exact throughput by symbolic (state-space) execution — refs [8]/[16].

Self-timed execution of a consistent CSDFG is eventually periodic because
its time-abstract state space is finite *per strongly connected
component*; once a state recurs the throughput is read off the cycle.

Non-strongly-connected graphs need care: a fast upstream SCC fills its
outgoing (unbounded) buffers forever, so the full-graph state never
recurs. Steady-state throughput, however, is decided per SCC — inter-SCC
buffers are unbounded and only add latency — so the method decomposes the
graph, simulates each SCC, and takes the slowest normalized period:

    ``Ω_G = max over SCCs C of max_{t ∈ C} simulated period``

where each SCC simulation is normalized by the *global* repetition vector
restricted to it (giving each component's bound on ``Ω_G`` directly).

Complexity is exponential in the worst case (the distance between
recurrent states is not polynomially bounded — this is the method K-Iter
beats in Tables 1 and 2); budgets turn divergence into
:class:`~repro.exceptions.BudgetExceededError` timeout rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.analysis.consistency import repetition_vector
from repro.analysis.structure import strongly_connected_components
from repro.exceptions import DeadlockError
from repro.model.graph import CsdfGraph
from repro.scheduling.asap import AsapSimulator
from repro.utils.timing import TimeBudget


@dataclass
class SymbolicResult:
    """Outcome of symbolic execution.

    ``period`` is exact (``Ω_G``); ``states_explored`` sums the state
    spaces of all SCC simulations (the method's cost driver).
    """

    period: Fraction
    states_explored: int
    scc_count: int

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.period == 0:
            return None
        return Fraction(1, 1) / self.period


def throughput_symbolic(
    graph: CsdfGraph,
    *,
    max_states: int = 2_000_000,
    time_budget: Optional[float] = None,
) -> SymbolicResult:
    """Exact maximum throughput via per-SCC self-timed state-space search.

    Raises
    ------
    DeadlockError
        When some SCC (or the full-graph liveness pre-check) deadlocks.
    BudgetExceededError
        When a state or wall-clock budget is exhausted (paper's ``> 1d``).
    """
    from repro.analysis.liveness import can_complete_iteration

    q = repetition_vector(graph)
    # Cross-SCC deadlock cannot happen in a consistent graph whose SCCs
    # are all live, but a *token-starved* SCC (or the trivial single-task
    # SCC with a bad custom self-loop) can be dead; check liveness first
    # so the error message distinguishes deadlock from divergence.
    if not can_complete_iteration(graph, q):
        raise DeadlockError(
            f"graph {graph.name!r} deadlocks: no full iteration from the "
            "initial marking"
        )
    budget = TimeBudget(time_budget, label="symbolic execution")
    components = strongly_connected_components(graph)
    worst = Fraction(0)
    states = 0
    for component in components:
        sub = _induced_subgraph(graph, component)
        if all(graph.task(t).iteration_duration == 0 for t in component):
            # An all-zero-duration SCC fires arbitrarily fast (its token
            # game is live — checked above): period contribution 0. The
            # simulator cannot represent "infinitely many firings at one
            # instant", so this case is resolved analytically.
            continue
        sim = AsapSimulator(sub)
        result = sim.run_until_recurrence(
            {t: q[t] for t in component},
            max_states=max_states,
            time_budget=budget.remaining(),
        )
        states += result.states_stored
        if result.period > worst:
            worst = result.period
    return SymbolicResult(
        period=worst,
        states_explored=states,
        scc_count=len(components),
    )


def _induced_subgraph(graph: CsdfGraph, tasks: List[str]) -> CsdfGraph:
    """Tasks of one SCC plus every buffer internal to it (incl. self-loops)."""
    keep = set(tasks)
    sub = CsdfGraph(f"{graph.name}[{'+'.join(tasks[:3])}...]"
                    if len(tasks) > 3 else f"{graph.name}[{'+'.join(tasks)}]")
    for name in tasks:
        sub.add_task(graph.task(name))
    for b in graph.buffers():
        if b.source in keep and b.target in keep:
            sub.add_buffer(b)
    return sub
