"""SDF→HSDF expansion baseline — paper references [10] (and [6]'s idea).

The classical transformation [Lee & Messerschmitt 1987] unrolls one graph
iteration: task ``t`` becomes ``q_t`` homogeneous copies ``⟨t,1⟩..⟨t,q_t⟩``
and each buffer becomes direct precedence arcs between copies:

* the ``j``-th firing of consumer ``t'`` needs the ``n(j)``-th firing of
  producer ``t`` with ``n(j) = ⌈(j·o_b − M0)/i_b⌉`` (no dependency when
  ``n(j) ≤ 0``); the pattern is periodic with ``n(j+q_{t'}) = n(j)+q_t``;
* an arc from copy ``((n−1) mod q_t)+1`` to copy ``j`` carries
  ``m = −⌊(n−1)/q_t⌋`` iteration-delay tokens (``m ≥ 0`` by consistency);
* serialization arcs chain each task's copies with one token closing the
  iteration loop.

Throughput is then a maximum cycle ratio with cost = producer duration and
transit = delay tokens. The transformation is **not polynomial** — the
HSDF has ``Σ_t q_t`` nodes — which is exactly why Table 1's expansion
columns blow up on large-Σq categories.

``reduced=True`` drops the transitively-implied arcs (a consumer copy
whose binding producer firing equals its predecessor copy's is already
constrained through the serialization chain), a light-weight stand-in for
the cycle-induced-subgraph reduction of [de Groote et al. 2012].
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.analysis.consistency import repetition_vector
from repro.exceptions import ModelError
from repro.mcrp.graph import BiValuedGraph
from repro.mcrp.ratio_iteration import max_cycle_ratio
from repro.utils.rational import ceil_div


def expand_sdf_to_hsdf(
    graph,
    *,
    reduced: bool = False,
    repetition: Optional[Dict[str, int]] = None,
) -> Tuple[BiValuedGraph, Dict[Tuple[str, int], int]]:
    """Unroll an SDF graph into its homogeneous precedence graph.

    Returns the bi-valued graph (cost = producer duration, transit =
    iteration-delay tokens) and the ``(task, copy)`` → node index map.

    Raises :class:`ModelError` on CSDF input (the expansion baseline is an
    SDF technique; the paper's Table 1 applies it to SDF only).
    """
    if not graph.is_sdf():
        raise ModelError(
            "HSDF expansion requires an SDF graph (every task single-phase)"
        )
    if repetition is None:
        repetition = repetition_vector(graph)

    node_index: Dict[Tuple[str, int], int] = {}
    labels = []
    for t in graph.tasks():
        for k in range(1, repetition[t.name] + 1):
            node_index[(t.name, k)] = len(labels)
            labels.append((t.name, k))
    hsdf = BiValuedGraph(len(labels), labels=labels)

    # Serialization: copy k -> k+1 (0 tokens), last -> first (1 token).
    for t in graph.tasks():
        q_t = repetition[t.name]
        d_t = t.durations[0]
        for k in range(1, q_t):
            hsdf.add_arc(
                node_index[(t.name, k)],
                node_index[(t.name, k + 1)],
                d_t,
                0,
            )
        hsdf.add_arc(
            node_index[(t.name, q_t)],
            node_index[(t.name, 1)],
            d_t,
            1,
        )

    for b in graph.buffers():
        q_src = repetition[b.source]
        q_dst = repetition[b.target]
        i_b = b.total_production
        o_b = b.total_consumption
        d_src = graph.task(b.source).durations[0]
        previous_n: Optional[int] = None
        for j in range(1, q_dst + 1):
            n = ceil_div(j * o_b - b.initial_tokens, i_b)
            # n ≤ 0: copy j's *first* firing needs no producer, but its
            # iteration-r firing needs producer firing n + r·q_src; the
            # marked arc below (delay ≥ 1) encodes exactly that — tokens
            # pre-fill the first `delay` iterations.
            copy = (n - 1) % q_src + 1
            delay = -((n - 1) // q_src)
            if delay < 0:
                # n > q_src: a first-iteration firing would need a
                # second-iteration producer firing — impossible when
                # M0 ≥ 0 and the graph is consistent.
                raise ModelError(
                    f"negative delay in expansion of buffer {b.name!r}"
                )
            if reduced and previous_n == n:
                continue
            hsdf.add_arc(
                node_index[(b.source, copy)],
                node_index[(b.target, j)],
                d_src,
                delay,
            )
            previous_n = n
    return hsdf, node_index


@dataclass
class ExpansionResult:
    """Outcome of the HSDF-expansion method (exact for SDF)."""

    period: Fraction
    hsdf_nodes: int
    hsdf_arcs: int

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.period == 0:
            return None
        return Fraction(1, 1) / self.period


def throughput_expansion(graph, *, reduced: bool = True) -> ExpansionResult:
    """Exact SDF throughput via HSDF expansion + maximum cycle ratio.

    Examples
    --------
    >>> from repro.model import sdf
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 2, 1, 0), ("B", "A", 1, 2, 4)])
    >>> throughput_expansion(g).period
    Fraction(2, 1)
    """
    hsdf, _index = expand_sdf_to_hsdf(graph, reduced=reduced)
    result = max_cycle_ratio(hsdf)
    period = result.ratio if result.ratio is not None else Fraction(0)
    return ExpansionResult(
        period=period,
        hsdf_nodes=hsdf.node_count,
        hsdf_arcs=hsdf.arc_count,
    )
