"""Baseline throughput-evaluation methods the paper compares against.

* :mod:`repro.baselines.periodic` — the polynomial *approximative*
  1-periodic method [Bodin et al., ESTIMedia'13] (paper reference [4]).
* :mod:`repro.baselines.symbolic` — the *exact exponential* symbolic
  execution / state-space method [Ghamarian et al. ACSD'06, Stuijk et al.
  TC'08] (paper references [8] and [16]).
* :mod:`repro.baselines.expansion` — SDF→HSDF expansion [Lee &
  Messerschmitt '87] plus maximum cycle mean, with a reduced-arc variant
  standing in for the cycle-induced-subgraph method [de Groote et al.'12]
  (paper reference [6]).
"""

from repro.baselines.expansion import (
    expand_sdf_to_hsdf,
    throughput_expansion,
)
from repro.baselines.periodic import throughput_periodic
from repro.baselines.symbolic import throughput_symbolic

__all__ = [
    "expand_sdf_to_hsdf",
    "throughput_expansion",
    "throughput_periodic",
    "throughput_symbolic",
]
