"""Command-line interface: ``python -m repro <command> …``.

Commands
--------
``info``        graph summary, repetition vector, liveness, period bounds
``throughput``  exact/approximate throughput with a chosen method
``batch``       run a manifest of graphs through the throughput service
                (``--coordinator URL`` routes it through a coordinator;
                ``--trace out.jsonl`` records a flight-recorder trace)
``serve``       run a coordinator node (HTTP cache + job queue)
``worker``      run a worker daemon against a coordinator or queue
``serve-stats`` summarize the on-disk result cache, or a live
                coordinator with ``--coordinator URL`` (``--metrics``
                prints its raw Prometheus scrape)
``trace``       summarize a flight-recorder trace file (span trees,
                self/total time, top spans)
``convert``     JSON ↔ SDF3-XML ↔ DOT conversion (by file extension)
``gantt``       ASCII Gantt of the ASAP or optimal K-periodic schedule
``generate``    emit a benchmark graph (paper figures, apps, categories)
``engines``     list the registered MCRP engines and their capabilities
``bench``       regenerate Table 1 / Table 2

Graphs are read from ``.json`` (native format) or ``.xml`` (SDF3 subset).
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from pathlib import Path
from typing import Optional

from repro.analysis import is_consistent, is_live, repetition_vector
from repro.analysis.bounds import period_bounds
from repro.exceptions import ReproError
from repro.io import (
    graph_to_dot,
    load_graph,
    read_sdf3_xml,
    save_graph,
    write_sdf3_xml,
)
from repro.model.graph import CsdfGraph


def _read_graph(path: str) -> CsdfGraph:
    suffix = Path(path).suffix.lower()
    if suffix == ".json":
        return load_graph(path)
    if suffix == ".xml":
        return read_sdf3_xml(path)
    raise ReproError(f"unknown graph format {suffix!r} (use .json or .xml)")


def _write_graph(graph: CsdfGraph, path: str) -> None:
    suffix = Path(path).suffix.lower()
    if suffix == ".json":
        save_graph(graph, path)
    elif suffix == ".xml":
        write_sdf3_xml(graph, path)
    elif suffix == ".dot":
        Path(path).write_text(graph_to_dot(graph))
    else:
        raise ReproError(
            f"unknown output format {suffix!r} (use .json, .xml or .dot)"
        )


# ----------------------------------------------------------------------
def cmd_info(args) -> int:
    graph = _read_graph(args.graph)
    print(graph.summary())
    if not is_consistent(graph):
        print("consistent: no (throughput undefined)")
        return 1
    q = repetition_vector(graph)
    print("consistent: yes")
    print("repetition vector:", q)
    print("sum(q):", sum(q.values()))
    live = is_live(graph)
    print("live:", "yes" if live else "no (deadlock)")
    if live:
        bounds = period_bounds(graph, q)
        print(f"period bounds: [{bounds.lower}, {bounds.upper}] "
              f"(bottleneck: {bounds.bottleneck_task})")
    else:
        from repro.analysis.deadlock import explain_deadlock

        diagnosis = explain_deadlock(graph)
        if diagnosis is not None:
            print(diagnosis.describe())
    return 0


def cmd_throughput(args) -> int:
    from repro.bench.runner import run_method

    graph = _read_graph(args.graph)
    outcome = run_method(args.method, graph, args.budget,
                         engine=args.engine)
    print(f"method: {args.method}")
    if args.engine is not None:
        print(f"engine: {args.engine}")
    print(f"status: {outcome.status}")
    if outcome.period is not None:
        print(f"period: {outcome.period}")
        if outcome.period != 0:
            th = Fraction(1, 1) / outcome.period
            print(f"throughput: {th} (~{float(th):.6g})")
    print(f"time: {outcome.time_text()}")
    return 0 if outcome.status in ("OK",) else 1


def _load_manifest(path: str):
    """Parse a batch manifest into ``(label, graph_path, expected)`` rows.

    Accepted shapes (all JSON): a list of path strings; a list of
    objects with ``"file"`` and an optional exact ``"period"``
    ``[num, den]`` pair (the golden-corpus ``golden_index.json`` is
    exactly this); or an object with a ``"graphs"`` key holding either.
    Paths are resolved relative to the manifest's directory.
    """
    import json

    manifest_path = Path(path)
    try:
        payload = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read manifest {path!r}: {exc}") from exc
    if isinstance(payload, dict):
        payload = payload.get("graphs")
    if not isinstance(payload, list) or not payload:
        raise ReproError(
            f"manifest {path!r} must be a non-empty JSON list of graph "
            "paths or {file, period?} objects (or {'graphs': [...]})"
        )
    rows = []
    for entry in payload:
        if isinstance(entry, str):
            file_name, expected = entry, None
        elif isinstance(entry, dict) and "file" in entry:
            file_name = entry["file"]
            period = entry.get("period")
            expected = None if period is None else Fraction(*period)
        else:
            raise ReproError(f"bad manifest entry {entry!r}")
        rows.append(
            (file_name, manifest_path.parent / file_name, expected)
        )
    return rows


def cmd_batch(args) -> int:
    import json

    from repro.service import ResultCache, ThroughputService

    if args.trace:
        # Configure before the service exists so spawned pool children
        # inherit REPRO_TRACE and append to the same file.
        from repro.obs.trace import configure_tracing

        configure_tracing(args.trace)
    if args.profile:
        # Same bootstrap rule: pool children inherit REPRO_PROFILE and
        # append their own envelopes to the same file.
        from repro.obs.profiler import configure_profiling

        configure_profiling(args.profile)
    rows = _load_manifest(args.manifest)
    cache = (
        ResultCache(disk_root=args.cache_dir)
        if args.cache_dir else ResultCache()
    )
    fallbacks = (
        tuple(args.fallback) if args.fallback else ("ratio-iteration",)
    )
    if args.coordinator and args.queue:
        raise ReproError("pick one of --coordinator or --queue")
    if args.coordinator or args.queue:
        from repro.distributed import CoordinatorClient, make_job_queue

        queue = (
            CoordinatorClient(args.coordinator) if args.coordinator
            else make_job_queue(args.queue)
        )
        service = ThroughputService(
            engine=args.engine,
            fallback_engines=fallbacks,
            time_budget=args.budget,
            batched=not args.no_batched,
            cache=cache,
            queue=queue,
            queue_poll=args.poll,
            queue_wait_timeout=args.wait_timeout,
        )
    else:
        service = ThroughputService(
            engine=args.engine,
            fallback_engines=fallbacks,
            workers=args.workers,
            mp_context=args.mp_context,
            chunk_size=args.chunk_size,
            job_timeout=args.job_timeout,
            time_budget=args.budget,
            batched=not args.no_batched,
            cache=cache,
        )
    failures = 0
    mismatches = 0
    with service:
        jobs = [
            service.job_for(_read_graph(str(graph_path)), label=label)
            for label, graph_path, _expected in rows
        ]
        outcomes = service.submit_many(jobs)
        with open(args.output, "w") as sink:
            for (label, _path, expected), outcome in zip(rows, outcomes):
                record = outcome.to_json_dict()
                record["file"] = label
                if outcome.status not in ("OK", "DEADLOCK"):
                    failures += 1
                if args.check and expected is not None:
                    matched = outcome.period == expected
                    record["expected_period"] = [
                        expected.numerator, expected.denominator
                    ]
                    record["matched"] = matched
                    if not matched:
                        mismatches += 1
                        print(
                            f"MISMATCH {label}: expected {expected}, "
                            f"got {outcome.period} "
                            f"(status {outcome.status})",
                            file=sys.stderr,
                        )
                sink.write(json.dumps(record) + "\n")
        stats = service.stats()
    print(f"wrote {args.output}: {stats.jobs} job(s), "
          f"{stats.by_status.get('OK', 0)} OK, {failures} failed")
    print(f"cache: {stats.cache.get('memory_hits', 0)} memory hit(s), "
          f"{stats.cache.get('disk_hits', 0)} disk hit(s), "
          f"{stats.batch_dedup} batch-dedup, {stats.solves} solve(s)")
    print(f"routing: {stats.batched} batched solve(s), "
          f"{stats.fallback} engine fallback(s)")
    if stats.pool:
        print(f"pool: {args.workers} worker(s), "
              f"{stats.pool['chunks']} chunk(s), "
              f"{stats.pool['crashes']} crash(es), "
              f"{stats.pool['timeouts']} timeout(s)")
    if args.coordinator or args.queue:
        remote_hits = sum(
            1 for o in outcomes if o.cache_hit == "remote"
        )
        print(f"coordinator: {args.coordinator or args.queue}, "
              f"{remote_hits} remote cache hit(s)")
        if stats.queue:
            queue_stats = stats.queue.get("queue", stats.queue)
            print("queue: " + ", ".join(
                f"{state}={queue_stats.get(state, 0)}"
                for state in ("pending", "leased", "done", "dead")
            ))
    print(f"wall time: {stats.wall_time:.3f}s")
    if args.trace:
        print(f"trace: {args.trace} (summarize with `repro trace "
              f"{args.trace}`)")
    from repro.obs.profiler import (profile_path, profiling_enabled,
                                    write_profile)
    if profiling_enabled():
        # Flush this process's samples now (pool children flush via
        # their atexit hooks) so the file is complete on return.
        written = write_profile()
        if written:
            print(f"profile: {written} (render with `repro profile "
                  f"{written}`)")
        else:
            print(f"profile: no samples landed in a profiled span "
                  f"(batch too fast for the sampling interval); "
                  f"{profile_path()} untouched")
    if args.check:
        checked = sum(1 for _l, _p, e in rows if e is not None)
        print(f"check: {checked - mismatches}/{checked} exact period "
              f"match(es)")
    return 1 if (failures or mismatches) else 0


def cmd_explore(args) -> int:
    import json

    from repro.service import ThroughputService

    manifest_path = Path(args.manifest)
    try:
        payload = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(
            f"cannot read manifest {args.manifest!r}: {exc}") from exc
    graph_file = None
    if isinstance(payload, list):
        points = payload
    elif isinstance(payload, dict):
        points = payload.get("points")
        graph_file = payload.get("graph")
    else:
        points = None
    if not isinstance(points, list) or not points:
        raise ReproError(
            f"manifest {args.manifest!r} must be a non-empty JSON list "
            "of design points (or {'graph': ..., 'points': [...]}); see "
            "docs/dse.md for the point/edit schema"
        )
    if args.graph:
        graph = _read_graph(args.graph)
    elif isinstance(graph_file, str):
        graph = _read_graph(str(manifest_path.parent / graph_file))
    else:
        raise ReproError(
            "no graph to explore: pass --graph FILE or put a 'graph' "
            "path in the manifest"
        )
    with ThroughputService(
        engine=args.engine, workers=args.workers,
        warm_start=not args.no_warm,
    ) as service:
        records = service.explore(graph, points, check=args.check)
    failures = 0
    deadlocks = 0
    with open(args.output, "w") as sink:
        for record in records:
            if record["status"] == "DEADLOCK":
                deadlocks += 1
            elif record["status"] != "OK":
                failures += 1
            sink.write(json.dumps(record) + "\n")
    print(f"wrote {args.output}: {len(records)} design point(s), "
          f"{len(records) - failures - deadlocks} OK, "
          f"{deadlocks} deadlocked, {failures} failed")
    if args.check:
        print(f"check: every certified λ* matched a cold solve "
              f"({len(records)} point(s))")
    return 1 if failures else 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.distributed import (
        CoordinatorServer,
        make_cache_backend,
        make_job_queue,
    )

    if args.cache.startswith(("http://", "https://")) or \
            args.queue.startswith(("http://", "https://")):
        raise ReproError(
            "a coordinator owns its own storage; give it a "
            "memory/disk/sqlite cache and a memory/sqlite queue"
        )
    cache = make_cache_backend(args.cache)
    queue = make_job_queue(
        args.queue,
        visibility_timeout=args.visibility_timeout,
        max_attempts=args.max_attempts,
    )
    server = CoordinatorServer(
        host=args.host, port=args.port, cache=cache, queue=queue,
        verbose=args.verbose,
    )
    server.start()
    print(f"coordinator listening on {server.url}", flush=True)
    print(f"cache backend: {cache.name}; queue backend: {queue.name} "
          f"(visibility {queue.visibility_timeout:g}s, "
          f"max {queue.max_attempts} attempt(s))", flush=True)
    stop = threading.Event()

    def _shutdown(signum, frame):  # pragma: no cover - signal path
        stop.set()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        stop.wait()
    finally:
        server.shutdown()
        print("coordinator stopped")
    return 0


def cmd_worker(args) -> int:
    import signal

    from repro.distributed import (
        CoordinatorClient,
        Worker,
        make_cache_backend,
        make_job_queue,
    )

    if bool(args.coordinator) == bool(args.queue):
        raise ReproError(
            "pick exactly one job source: --coordinator URL or "
            "--queue sqlite:PATH"
        )
    if args.coordinator:
        queue = CoordinatorClient(args.coordinator)
        source = args.coordinator
    else:
        queue = make_job_queue(
            args.queue, visibility_timeout=args.visibility_timeout or 30.0
        )
        source = args.queue
    cache = make_cache_backend(args.cache) if args.cache else None
    worker = Worker(
        queue,
        cache=cache,
        worker_id=args.id,
        workers=args.workers,
        mp_context=args.mp_context,
        chunk_size=args.chunk_size,
        poll_interval=args.poll,
        visibility_timeout=args.visibility_timeout,
        drain=args.drain,
        max_chunks=args.max_chunks,
    )

    def _shutdown(signum, frame):  # pragma: no cover - signal path
        worker.stop()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    print(f"worker {worker.worker_id} draining {source} "
          f"(chunk {worker.chunk_size}, "
          f"{args.workers or 'inline'} solver process(es))", flush=True)
    stats = worker.run()
    print(f"worker {worker.worker_id} stopped: "
          f"{stats.jobs} job(s) in {stats.chunks} chunk(s), "
          f"{stats.acks} acked, {stats.stale} stale, "
          f"{stats.nacks} nacked")
    return 0


def cmd_trace(args) -> int:
    from repro.obs.summary import load_events, render_summary
    from repro.obs.trace import trace_dropped_total

    events = load_events(args.file)
    if not events:
        print(f"no trace events in {args.file}")
        return 1
    print(render_summary(
        events, top=args.top, trace_id=args.trace_id,
        max_traces=args.max_traces, dropped=trace_dropped_total(),
    ))
    return 0


def cmd_profile(args) -> int:
    from repro.obs.summary import load_profiles, render_profile

    try:
        envelopes = load_profiles(args.file)
    except OSError as exc:
        raise ReproError(f"cannot read profile {args.file!r}: {exc}")
    if not envelopes:
        print(f"no profile envelopes in {args.file}")
        return 1
    print(render_profile(envelopes, top=args.top))
    return 0


def cmd_replay(args) -> int:
    from repro.obs.slowlog import render_replay, replay_entry

    try:
        report = replay_entry(args.entry, trace=not args.no_trace)
    except (OSError, ValueError, KeyError) as exc:
        raise ReproError(f"cannot replay {args.entry!r}: {exc}")
    print(render_replay(report), end="")
    return 0 if report["match"] else 1


def cmd_bench_report(args) -> int:
    from repro.obs.history import (bench_report, history_path,
                                   load_history, render_bench_report)

    paths = [Path(p) for p in args.bench] if args.bench else \
        sorted(Path(".").glob("BENCH_*.json"))
    hist = Path(args.history) if args.history else history_path()
    rows = load_history(hist) if hist else []
    threshold = args.threshold / 100.0
    report = bench_report(paths, rows, threshold=threshold)
    print(render_bench_report(report, threshold=threshold), end="")
    if not report:
        return 0  # nothing to gate on — CI-friendly no-op
    regressed = [row for row in report if row["regressed"]]
    if regressed and not args.informational:
        return 1
    return 0


def cmd_report(args) -> int:
    if args.coordinator:
        from repro.distributed.client import http_text

        status, body = http_text(f"{args.coordinator}/report")
        if status != 200:
            raise ReproError(
                f"coordinator /report returned HTTP {status}")
        html = body
    else:
        import json

        from repro.obs.history import history_path, load_history
        from repro.obs.metrics import REGISTRY
        from repro.obs.report import build_report
        from repro.obs.slowlog import slowlog_entries
        from repro.obs.summary import load_events
        from repro.obs.trace import trace_dropped_total

        events = load_events(args.trace) if args.trace else []
        captures = []
        for path in slowlog_entries(args.slowlog):
            try:
                captures.append(
                    json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue
        hist = Path(args.history) if args.history else history_path()
        rows = load_history(hist) if hist else []
        html = build_report(
            snapshot=REGISTRY.snapshot(), events=events,
            slowlog_entries=captures, history_rows=rows,
            dropped=trace_dropped_total(),
        )
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html, encoding="utf-8")
    print(f"wrote {out} ({len(html)} bytes)")
    return 0


def _coordinator_stats(url: str, *, metrics: bool = False) -> int:
    from repro.distributed import CoordinatorClient

    client = CoordinatorClient(url)
    if metrics:
        # the raw Prometheus scrape, exactly as a scraper would see it
        sys.stdout.write(client.metrics_text())
        return 0
    stats = client.stats()
    print(f"coordinator: {url}")
    print(f"uptime: {stats.get('uptime', 0):.1f}s, "
          f"jobs submitted: {stats.get('submitted', 0)} "
          f"({stats.get('cache_short_circuits', 0)} cache "
          f"short-circuit(s))")
    cache = stats.get("cache", {})
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    rate = (100.0 * cache.get("hits", 0) / lookups) if lookups else 0.0
    print(f"cache [{cache.get('backend', '?')}]: "
          f"{cache.get('hits', 0)} hit(s), "
          f"{cache.get('misses', 0)} miss(es) ({rate:.0f}% hit rate), "
          f"{cache.get('puts', 0)} put(s), "
          f"{cache.get('entries', '?')} entrie(s)")
    queue = stats.get("queue", {})
    print(f"queue [{queue.get('backend', '?')}]: " + ", ".join(
        f"{state}={queue.get(state, 0)}"
        for state in ("pending", "leased", "done", "dead")
    ) + f", {queue.get('redeliveries', 0)} redeliverie(s)")
    workers = stats.get("workers", {})
    print(f"workers: {len(workers)} seen")
    for worker_id, info in sorted(workers.items()):
        print(f"  {worker_id}: last seen {info.get('age', 0):.1f}s ago, "
              f"{info.get('leases', 0)} lease(s), "
              f"{info.get('results', 0)} result(s), "
              f"{info.get('heartbeats', 0)} heartbeat(s)")
    dead = stats.get("dead_letters", [])
    if dead:
        print(f"dead letters: {len(dead)}")
        for entry in dead:
            print(f"  {entry['digest'][:12]}…: {entry['error']} "
                  f"({entry['attempts']} attempt(s))")
    else:
        print("dead letters: none")
    return 0


def cmd_serve_stats(args) -> int:
    from collections import Counter

    from repro.service import ResultCache

    if args.coordinator:
        return _coordinator_stats(args.coordinator, metrics=args.metrics)
    if args.metrics:
        raise ReproError("--metrics needs --coordinator URL")
    cache = ResultCache(memory_size=0, disk_root=args.cache_dir)
    statuses: Counter = Counter()
    engines: Counter = Counter()
    entries = 0
    batched = 0
    solve_time = 0.0
    for _digest, outcome in cache.disk_entries():
        entries += 1
        statuses[outcome.get("status", "?")] += 1
        engines[outcome.get("engine_used") or "?"] += 1
        batched += bool(outcome.get("batched"))
        solve_time += outcome.get("wall_time", 0.0)
    print(f"cache dir: {args.cache_dir}")
    print(f"entries: {entries} "
          f"({cache.disk_size_bytes() / 1024:.1f} KiB)")
    if not entries:
        return 0
    print("by status: " + ", ".join(
        f"{status}={count}" for status, count in sorted(statuses.items())
    ))
    print("by engine: " + ", ".join(
        f"{engine}={count}" for engine, count in sorted(engines.items())
    ))
    print(f"batched solves: {batched}/{entries}")
    print(f"solve time banked: {solve_time:.3f}s "
          f"(re-spent on every hit instead of re-solving)")
    return 0


def cmd_convert(args) -> int:
    graph = _read_graph(args.input)
    _write_graph(graph, args.output)
    print(f"wrote {args.output}")
    return 0


def _binding_from_args(graph, args):
    """``--resources N`` → a balanced N-processor unit-capacity binding."""
    resources = getattr(args, "resources", None)
    if not resources:
        return None
    from repro.scheduling import ResourceBinding

    return ResourceBinding.balanced(graph, resources)


def _policy_options_from_args(args):
    # only forward what the user actually set — policies reject options
    # they don't understand, which is the right failure for e.g.
    # ``--policy asap --priority mobility``.
    options = {}
    priority = getattr(args, "priority", None)
    if priority:
        options["priority"] = priority
    return options


def cmd_gantt(args) -> int:
    from repro.scheduling import asap_schedule, policy_gantt, render_gantt

    graph = _read_graph(args.graph)
    policy = args.policy
    if args.kperiodic and policy is None:
        policy = "asap"  # historic spelling of --policy asap
    if policy is not None:
        print(policy_gantt(
            graph, policy,
            engine=args.engine,
            binding=_binding_from_args(graph, args),
            horizon_iterations=args.iterations,
            width=args.width,
            **_policy_options_from_args(args),
        ))
        return 0
    records = asap_schedule(graph, iterations=args.iterations)
    print("as-soon-as-possible schedule (self-timed simulation)")
    print(render_gantt(records, width=args.width))
    return 0


def cmd_generate(args) -> int:
    from repro.generators import (
        blackscholes, echo, figure1_buffer, figure2_graph, h263_decoder,
        h264_encoder, jpeg2000, large_hsdf, large_transient, mimic_dsp,
        modem, mp3_playback, pdetect, samplerate_converter,
        satellite_receiver,
    )
    from repro.generators.synthetic import (
        graph1, graph2, graph3, graph4, graph5,
    )

    seeded = {
        "mimic-dsp": mimic_dsp,
        "large-hsdf": large_hsdf,
        "large-transient": large_transient,
    }
    scaled = {
        "blackscholes": blackscholes,
        "echo": echo,
        "jpeg2000": jpeg2000,
        "pdetect": pdetect,
        "h264": h264_encoder,
        "graph1": graph1, "graph2": graph2, "graph3": graph3,
        "graph4": graph4, "graph5": graph5,
    }
    plain = {
        "figure1": figure1_buffer,
        "figure2": figure2_graph,
        "h263": h263_decoder,
        "samplerate": samplerate_converter,
        "satellite": satellite_receiver,
        "modem": modem,
        "mp3": mp3_playback,
    }
    name = args.name
    if name in seeded:
        graph = seeded[name](args.seed)
    elif name in scaled:
        graph = scaled[name](args.scale)
    elif name in plain:
        graph = plain[name]()
    else:
        known = sorted([*seeded, *scaled, *plain])
        raise ReproError(f"unknown generator {name!r}; choose from {known}")
    _write_graph(graph, args.output)
    print(f"wrote {args.output}: {graph.task_count} tasks, "
          f"{graph.buffer_count} buffers")
    return 0


def cmd_schedule(args) -> int:
    from repro.io.schedule_format import save_schedule
    from repro.scheduling import build_schedule

    graph = _read_graph(args.graph)
    outcome = build_schedule(
        graph, args.policy or "asap",
        engine=args.engine,
        binding=_binding_from_args(graph, args),
        **_policy_options_from_args(args),
    )
    outcome.schedule.verify(graph, iterations=3)
    save_schedule(outcome.schedule, args.output)
    print(f"policy: {outcome.policy}")
    print(f"period: {outcome.omega}")
    print(f"K: {outcome.K}")
    for key in sorted(outcome.stats):
        print(f"  {key}: {outcome.stats[key]}")
    print(f"schedule verified over 3 iterations and written to "
          f"{args.output}")
    return 0


def cmd_map(args) -> int:
    from repro.kperiodic import throughput_kiter
    from repro.mapping import greedy_load_balance, throughput_under_mapping

    graph = _read_graph(args.graph)
    limit = throughput_kiter(graph).period
    print(f"dataflow-limited period (no resource constraint): {limit}")
    for procs in range(1, args.processors + 1):
        mapping = greedy_load_balance(graph, procs)
        result, _ = throughput_under_mapping(graph, mapping)
        usage = len(mapping.processors())
        print(f"{procs} processor(s): period {result.period} "
              f"({usage} used, {mapping.granularity}-granular orders)")
    return 0


def cmd_engines(args) -> int:
    from repro.mcrp.registry import all_engines

    print("registered MCRP engines (selectable via throughput --engine):")
    print()
    for info in all_engines():
        flags = []
        flags.append("exact" if info.exact else "approximate")
        if info.float_prefilter:
            flags.append("float-prefilter")
        if info.supports_scc:
            flags.append("scc")
        if info.supports_lower_bound:
            flags.append("warm-start")
        if info.quadratic:
            flags.append("quadratic")
        if info.vectorized:
            flags.append("vectorized")
        if info.batched:
            flags.append("batched")
        print(f"  {info.name:<16} [{', '.join(flags)}]")
        if info.summary:
            print(f"  {'':<16} {info.summary}")
    return 0


def cmd_policies(args) -> int:
    from repro.scheduling import all_policies, priority_names

    print("registered scheduling policies "
          "(selectable via schedule/gantt --policy):")
    print()
    for info in all_policies():
        flags = []
        if info.resource_constrained:
            flags.append("resource-constrained")
        if info.refinement:
            flags.append("refinement")
        flags.append("certified-period")  # the family invariant
        print(f"  {info.name:<16} [{', '.join(flags)}]")
        if info.summary:
            print(f"  {'':<16} {info.summary}")
    print()
    print(f"list-scheduling priorities: {', '.join(priority_names())}")
    return 0


def cmd_bench(args) -> int:
    if args.table == "table1":
        from repro.bench import format_table1, run_table1

        rows = run_table1(
            graphs_per_category=args.count, budget=args.budget
        )
        print(format_table1(rows))
    else:
        from repro.bench import format_table2, run_table2

        blocks = run_table2(scale=args.scale, budget=args.budget)
        print(format_table2(blocks))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exact CSDF throughput evaluation (K-Iter, DAC'16).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="analyse a graph file")
    p.add_argument("graph")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("throughput", help="evaluate throughput")
    p.add_argument("graph")
    # method and engine names are validated by the registry-driven
    # run_method (its errors list the choices); resolving them here
    # would drag the whole engine stack into every CLI invocation,
    # including info/convert, and would go stale as engines register.
    p.add_argument("--method", default="kiter", metavar="METHOD",
                   help="throughput method: kiter, kiter-fullq, "
                        "periodic, symbolic, expansion, expansion-full, "
                        "unfolding, maxplus, or kiter@<engine>")
    p.add_argument("--engine", default=None, metavar="ENGINE",
                   help="MCRP engine for the kiter methods "
                        "(see `repro engines`)")
    p.add_argument("--budget", type=float, default=60.0,
                   help="wall-clock budget in seconds")
    p.set_defaults(func=cmd_throughput)

    p = sub.add_parser(
        "batch",
        help="run a manifest of graphs through the throughput service",
    )
    p.add_argument("manifest",
                   help="JSON list of graph paths or {file, period?} "
                        "objects (e.g. tests/data/golden_index.json)")
    p.add_argument("-o", "--output", required=True,
                   help="JSONL sink: one result object per graph")
    p.add_argument("--workers", type=int, default=0,
                   help="solver pool processes (0 = solve inline)")
    p.add_argument("--engine", default="hybrid", metavar="ENGINE",
                   help="primary MCRP engine (see `repro engines`)")
    p.add_argument("--fallback", action="append", metavar="ENGINE",
                   default=None,
                   help="fallback engine(s) tried on certification "
                        "failure (repeatable; default ratio-iteration)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent result cache directory "
                        "(e.g. results/cache)")
    p.add_argument("--budget", type=float, default=None,
                   help="per-job wall-clock budget in seconds")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="hard per-job pool timeout in seconds "
                        "(kills the worker)")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="jobs per pool chunk (default: auto)")
    p.add_argument("--mp-context", default=None,
                   choices=["fork", "spawn", "forkserver"],
                   help="multiprocessing start method")
    p.add_argument("--no-batched", action="store_true",
                   help="disable the batched fleet kernel (per-graph "
                        "solves only; identical results — escape hatch "
                        "and ablation baseline)")
    p.add_argument("--check", action="store_true",
                   help="verify exact periods against the manifest's "
                        "`period` entries (nonzero exit on mismatch)")
    p.add_argument("--coordinator", default=None, metavar="URL",
                   help="route the batch through a coordinator node "
                        "(its workers solve; --workers is ignored)")
    p.add_argument("--queue", default=None, metavar="SPEC",
                   help="route the batch through a shared job queue "
                        "instead (sqlite:PATH + `repro worker --queue`)")
    p.add_argument("--poll", type=float, default=0.1,
                   help="result poll interval in coordinator mode "
                        "(seconds)")
    p.add_argument("--wait-timeout", type=float, default=None,
                   help="give up on unanswered coordinator jobs after "
                        "this many seconds (default: wait forever)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record a flight-recorder trace (JSONL spans; "
                        "summarize with `repro trace FILE`)")
    p.add_argument("--profile", default=None, metavar="FILE",
                   help="attach the sampling profiler (JSONL envelopes; "
                        "render with `repro profile FILE`)")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "explore",
        help="sweep an edit manifest through one incremental DSE session",
    )
    p.add_argument("manifest",
                   help="JSON design-point list (or {'graph': PATH, "
                        "'points': [...]}); each point is {name?, "
                        "reset?, edits: [{op, ...}]} — see docs/dse.md")
    p.add_argument("-o", "--output", required=True,
                   help="JSONL sink: one certified result per point")
    p.add_argument("--graph", default=None, metavar="FILE",
                   help="base graph (overrides the manifest's "
                        "'graph' path)")
    p.add_argument("--engine", default="ratio-iteration", metavar="ENGINE",
                   help="MCRP engine (see `repro engines`)")
    p.add_argument("--workers", type=int, default=0,
                   help="0 runs the session inline; N>=1 ships the "
                        "whole sweep to one pool worker")
    p.add_argument("--no-warm", action="store_true",
                   help="disable warm-start seeding (identical results; "
                        "ablation/debug switch)")
    p.add_argument("--check", action="store_true",
                   help="re-solve every point cold and assert "
                        "bit-identical λ* (the exactness contract)")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "serve",
        help="run a coordinator node (HTTP job queue + result cache)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8350,
                   help="TCP port (0 picks an ephemeral one)")
    p.add_argument("--cache", default="memory", metavar="SPEC",
                   help="cache backend: memory[:N], disk:DIR, "
                        "sqlite:PATH (default memory)")
    p.add_argument("--queue", default="memory", metavar="SPEC",
                   help="queue backend: memory or sqlite:PATH "
                        "(default memory)")
    p.add_argument("--visibility-timeout", type=float, default=30.0,
                   help="seconds a lease stays exclusive without a "
                        "heartbeat")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="deliveries per job before dead-lettering")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run a worker daemon against a coordinator or shared queue",
    )
    p.add_argument("--coordinator", default=None, metavar="URL",
                   help="coordinator to lease jobs from")
    p.add_argument("--queue", default=None, metavar="SPEC",
                   help="lease directly from a shared queue instead "
                        "(sqlite:PATH)")
    p.add_argument("--cache", default=None, metavar="SPEC",
                   help="optional local write-through cache backend "
                        "(for --queue mode; a coordinator caches "
                        "server-side)")
    p.add_argument("--id", default=None,
                   help="worker id shown in coordinator stats")
    p.add_argument("--workers", type=int, default=0,
                   help="solver pool processes (0 = solve inline)")
    p.add_argument("--mp-context", default=None,
                   choices=["fork", "spawn", "forkserver"])
    p.add_argument("--chunk-size", type=int, default=4,
                   help="jobs leased per round trip")
    p.add_argument("--poll", type=float, default=0.5,
                   help="idle sleep between empty leases (seconds)")
    p.add_argument("--visibility-timeout", type=float, default=None,
                   help="lease exclusivity window override (seconds)")
    p.add_argument("--drain", action="store_true",
                   help="exit once the queue is empty")
    p.add_argument("--max-chunks", type=int, default=None,
                   help="stop after this many chunks (smoke tests)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "serve-stats",
        help="summarize the on-disk result cache or a live coordinator",
    )
    p.add_argument("--cache-dir", default="results/cache", metavar="DIR")
    p.add_argument("--coordinator", default=None, metavar="URL",
                   help="print a live coordinator's /stats instead "
                        "(hit rates, queue depth, worker liveness)")
    p.add_argument("--metrics", action="store_true",
                   help="print the coordinator's raw /metrics scrape "
                        "(Prometheus text) instead of the summary")
    p.set_defaults(func=cmd_serve_stats)

    p = sub.add_parser(
        "trace",
        help="summarize a flight-recorder trace file",
    )
    p.add_argument("file", help="JSONL trace (from `repro batch --trace`)")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the top-spans table")
    p.add_argument("--trace-id", default=None,
                   help="show only this trace's span tree")
    p.add_argument("--max-traces", type=int, default=5,
                   help="span trees rendered before eliding")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="render a sampling-profiler file (flame/self-time tables)",
    )
    p.add_argument("file", help="JSONL profile (from `repro batch "
                                "--profile` or REPRO_PROFILE=1)")
    p.add_argument("--top", type=int, default=15,
                   help="frames shown per span")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "replay",
        help="re-solve a slowlog capture and diff it (nonzero exit on "
             "λ* mismatch)",
    )
    p.add_argument("entry", help="slowlog JSON file "
                                 "(see results/slowlog/)")
    p.add_argument("--no-trace", action="store_true",
                   help="skip the replay trace / self-time diff")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "bench-report",
        help="compare BENCH_*.json against best-of-history (nonzero "
             "exit on regression)",
    )
    p.add_argument("bench", nargs="*",
                   help="BENCH_*.json files (default: glob the current "
                        "directory)")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="history JSONL (default: "
                        "results/bench_history.jsonl, or "
                        "$REPRO_BENCH_HISTORY)")
    p.add_argument("--threshold", type=float, default=30.0,
                   help="regression threshold in percent (default 30)")
    p.add_argument("--informational", action="store_true",
                   help="report regressions but always exit 0")
    p.set_defaults(func=cmd_bench_report)

    p = sub.add_parser(
        "report",
        help="write the static HTML ops report",
    )
    p.add_argument("-o", "--output", required=True,
                   help="HTML file to write")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="fold a JSONL trace file into the span sections")
    p.add_argument("--slowlog", default=None, metavar="DIR",
                   help="slowlog directory (default: the configured "
                        "root, or $REPRO_SLOWLOG)")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="bench history JSONL (default: "
                        "results/bench_history.jsonl)")
    p.add_argument("--coordinator", default=None, metavar="URL",
                   help="fetch a live coordinator's GET /report instead "
                        "of building locally")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("convert", help="convert between formats")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("gantt", help="render a schedule")
    p.add_argument("graph")
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--kperiodic", action="store_true",
                   help="render the optimal K-periodic schedule "
                        "instead of the self-timed simulation "
                        "(alias for --policy asap)")
    p.add_argument("--policy", default=None,
                   help="render a registered scheduling policy's "
                        "K-periodic schedule (see `repro policies`)")
    p.add_argument("--engine", default="ratio-iteration",
                   help="MCRP engine for the certification solve")
    p.add_argument("--resources", type=int, default=None,
                   help="balanced N-processor unit-capacity binding "
                        "for resource-constrained policies")
    p.add_argument("--priority", default=None,
                   help="list-scheduling priority function")
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser("generate", help="emit a benchmark graph")
    p.add_argument("name")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("schedule",
                       help="export a certified schedule "
                            "(any registered policy)")
    p.add_argument("graph")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--policy", default="asap",
                   help="scheduling policy (see `repro policies`)")
    p.add_argument("--engine", default="ratio-iteration",
                   help="MCRP engine for the certification solve")
    p.add_argument("--resources", type=int, default=None,
                   help="balanced N-processor unit-capacity binding "
                        "for resource-constrained policies")
    p.add_argument("--priority", default=None,
                   help="list-scheduling priority function")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("map", help="throughput under greedy mappings")
    p.add_argument("graph")
    p.add_argument("--processors", type=int, default=4,
                   help="sweep 1..N processors")
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("engines",
                       help="list the registered MCRP engines")
    p.set_defaults(func=cmd_engines)

    p = sub.add_parser("policies",
                       help="list the registered scheduling policies")
    p.set_defaults(func=cmd_policies)

    p = sub.add_parser("bench", help="regenerate a paper table")
    p.add_argument("table", choices=["table1", "table2"])
    p.add_argument("--budget", type=float, default=20.0)
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
