"""Theorem 4: the K-periodic optimality test.

Let ``c`` be a critical circuit of the bi-valued graph for periodicity
vector K, and let the tasks traversed by ``c`` have repetition values
``q_t``. With ``q̄_t = q_t / gcd{q_{t'} : t' ∈ c}``, if every task on the
circuit satisfies ``K_t ≡ 0 (mod q̄_t)``, then the throughput bound imposed
by ``c`` cannot be improved by any larger K and the computed throughput
``lcm(K)/R(c)`` is the graph's exact maximum throughput.

Intuition: within the sub-graph induced by the circuit, a K with
``K_t ∝ q̄_t`` already realizes the circuit's own repetition structure, so
its cycle ratio is the true bound of that sub-graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set, Tuple

from repro.exceptions import ModelError
from repro.utils.rational import gcd_list


def critical_qbar(
    repetition: Mapping[str, int],
    critical_tasks: Iterable[str],
) -> Dict[str, int]:
    """``q̄_t = q_t / gcd{q_{t'}, t' ∈ c}`` for every task on the circuit."""
    tasks = list(critical_tasks)
    if not tasks:
        raise ModelError("optimality test needs a non-empty critical circuit")
    g = gcd_list(repetition[t] for t in tasks)
    return {t: repetition[t] // g for t in tasks}


def optimality_test(
    repetition: Mapping[str, int],
    K: Mapping[str, int],
    critical_tasks: Iterable[str],
) -> Tuple[bool, Dict[str, int]]:
    """Apply Theorem 4's test.

    Returns ``(is_optimal, q̄)`` where ``q̄`` maps each critical task to its
    required divisor of ``K_t``; the same ``q̄`` feeds the K-update rule of
    Algorithm 1 when the test fails.

    Examples
    --------
    The paper's Figure 5 discussion: a critical circuit whose tasks all
    have ``q̄_t`` dividing ``K_t`` certifies optimality.

    >>> ok, qbar = optimality_test({"A": 2, "B": 4}, {"A": 1, "B": 2},
    ...                            ["A", "B"])
    >>> ok, qbar
    (True, {'A': 1, 'B': 2})
    """
    qbar = critical_qbar(repetition, critical_tasks)
    ok = all(K[t] % qbar[t] == 0 for t in qbar)
    return ok, qbar


def update_periodicity(
    K: Mapping[str, int],
    qbar: Mapping[str, int],
) -> Dict[str, int]:
    """Algorithm 1's update: ``K_t ← lcm(K_t, q̄_t)`` for circuit tasks.

    The update guarantees the circuit passes the test if it is critical
    again at the next round, which bounds the number of rounds by the
    number of elementary circuits.
    """
    from math import gcd

    updated = dict(K)
    for t, qb in qbar.items():
        k_t = updated[t]
        updated[t] = k_t * qb // gcd(k_t, qb)
    return updated
