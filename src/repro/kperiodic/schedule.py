"""Concrete K-periodic schedules.

A K-periodic schedule fixes, for every task ``t``, the start times of the
first ``K_t`` executions of each phase and a period ``µ_t``; execution
``n = α·K_t + β`` (``β ∈ 1..K_t``) of phase ``p`` starts at
``S⟨t_p, β⟩ + α·µ_t``.

The schedule can *verify itself* against the token-count semantics by
replaying all productions/consumptions over a horizon — this is the
library's ground-truth check that the Theorem 2 constraint generation is
sound (used heavily by the property-based tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ModelError
from repro.model.graph import CsdfGraph


@dataclass
class KPeriodicSchedule:
    """Start times + periods of a K-periodic schedule.

    Attributes
    ----------
    K:
        Periodicity vector.
    omega:
        Normalized period ``Ω_G`` (graph iterations per ``q`` executions).
    task_periods:
        ``µ_t = Ω_G·K_t/q_t`` for every task.
    starts:
        ``starts[(task, phase, beta)]`` = start time of the β-th execution
        of the phase within the periodic pattern, ``beta ∈ 1..K_t``.
    """

    K: Dict[str, int]
    omega: Fraction
    task_periods: Dict[str, Fraction]
    starts: Dict[Tuple[str, int, int], Fraction]

    @classmethod
    def from_potentials(
        cls,
        graph: CsdfGraph,
        K: Mapping[str, int],
        repetition: Mapping[str, int],
        node_index: Mapping[Tuple[str, int], int],
        omega: Fraction,
        dist: List[Fraction],
    ) -> "KPeriodicSchedule":
        """Assemble a schedule from longest-path potentials at ``λ*``.

        ``dist`` maps constraint-graph nodes to exact start times (the
        output of :func:`repro.kperiodic.solver.longest_path_potentials`)
        and ``node_index`` maps ``(task, expanded phase)`` labels to
        those nodes; the expanded phase ``β·φ + p`` of task ``t`` becomes
        execution ``β`` of phase ``p``. This is pure bookkeeping — every
        arithmetic decision was made by the potentials pass.
        """
        task_periods: Dict[str, Fraction] = {}
        starts: Dict[Tuple[str, int, int], Fraction] = {}
        for t in graph.tasks():
            name = t.name
            k_t = K[name]
            task_periods[name] = omega * k_t / repetition[name]
            phi = t.phase_count
            for expanded_phase in range(1, k_t * phi + 1):
                beta, p = divmod(expanded_phase - 1, phi)
                node = node_index[(name, expanded_phase)]
                starts[(name, p + 1, beta + 1)] = dist[node]
        return cls(
            K=dict(K), omega=omega, task_periods=task_periods, starts=starts
        )

    def start_time(self, task: str, phase: int, n: int) -> Fraction:
        """Start of ``⟨t_p, n⟩`` for any ``n ≥ 1``."""
        if n < 1:
            raise ModelError(f"execution index must be ≥ 1, got {n}")
        k_t = self.K[task]
        alpha, beta = divmod(n - 1, k_t)
        beta += 1
        return self.starts[(task, phase, beta)] + alpha * self.task_periods[task]

    @property
    def throughput(self) -> Optional[Fraction]:
        """``1/Ω_G``; ``None`` encodes an unbounded throughput (Ω = 0)."""
        if self.omega == 0:
            return None
        return Fraction(1, 1) / self.omega

    # ------------------------------------------------------------------
    # Ground-truth verification
    # ------------------------------------------------------------------
    def verify(
        self,
        graph: CsdfGraph,
        iterations: int = 3,
    ) -> None:
        """Replay token counts and raise ``ModelError`` on any violation.

        Parameters
        ----------
        graph:
            The *original* (non-expanded) graph this schedule belongs to.
        iterations:
            How many graph iterations (repetition-vector multiples) of
            executions per task to replay. Two periods are enough to catch
            steady-state violations; three adds margin for transients.

        Notes
        -----
        Tokens are consumed at a firing's start and produced at its
        completion; simultaneous events apply productions first (a
        consumer may start exactly at a producer's completion — the
        paper's executability condition is non-strict).
        """
        from repro.analysis.consistency import repetition_vector

        q = repetition_vector(graph)
        # events: (time, order, buffer index, delta)
        events: List[Tuple[Fraction, int, int, int]] = []
        buffers = list(graph.buffers())
        buffer_index = {b.name: i for i, b in enumerate(buffers)}
        for t in graph.tasks():
            # `iterations` graph iterations = iterations·q_t executions of t;
            # the window is self-contained: any token consumed inside it was
            # produced inside it (balance equations bound the needed
            # producer indices by iterations·q_producer).
            executions = iterations * q[t.name]
            for n in range(1, executions + 1):
                for p in range(1, t.phase_count + 1):
                    start = self.start_time(t.name, p, n)
                    end = start + t.duration(p)
                    for b in graph.out_buffers(t.name):
                        rate = b.production[p - 1]
                        if rate:
                            events.append((end, 0, buffer_index[b.name], rate))
                    for b in graph.in_buffers(t.name):
                        rate = b.consumption[p - 1]
                        if rate:
                            events.append((start, 1, buffer_index[b.name], -rate))
        events.sort(key=lambda e: (e[0], e[1]))
        tokens = [b.initial_tokens for b in buffers]
        for time, _order, b_idx, delta in events:
            tokens[b_idx] += delta
            if tokens[b_idx] < 0:
                raise ModelError(
                    f"schedule drives buffer {buffers[b_idx].name!r} to "
                    f"{tokens[b_idx]} tokens at time {time}"
                )

    def shifted(self, offset: Fraction) -> "KPeriodicSchedule":
        """A copy with every start time shifted by ``offset``."""
        return KPeriodicSchedule(
            K=dict(self.K),
            omega=self.omega,
            task_periods=dict(self.task_periods),
            starts={k: v + offset for k, v in self.starts.items()},
        )
