"""Lockstep K-Iter over a fleet of payloads via the batched MCRP kernels.

:func:`solve_fleet_payloads` is the chunk-level sibling of
:func:`repro.kperiodic.kiter.solve_kiter_payload`: plain dicts in, plain
dicts out, same outcome schema — but instead of solving one payload at a
time it drives one :class:`~repro.kperiodic.kiter.KIterMachine` per
payload in lockstep. Each lockstep round calls ``prepare()`` on every
unfinished machine, stacks the prepared constraint graphs and answers
them all with **one** :func:`repro.mcrp.batched.batched_solve_mcrp`
pass, then feeds every per-graph result back through ``absorb()``.
Machines certify (Theorem 4) at different rounds; finished ones simply
drop out of the next stack.

Exactness and parity are inherited, not re-proven: every per-graph λ*
coming out of the batched kernel is bit-identical to the per-graph
engine's (see :mod:`repro.mcrp.batched`), and the K-Iter control flow —
warm starts, deadlock escalation, optimality tests, round/budget caps,
engine fallback — is the *same* :class:`KIterMachine` code path the
sequential driver runs. A payload the fleet cannot take (``"batched":
False``, an engine without a batched oracle, no numpy) and any payload
hitting a :class:`~repro.exceptions.SolverError` mid-fleet (certification
failure → the per-graph fallback-engine chain must run) is answered by
``solve_kiter_payload`` itself, so the two entry points agree on every
input by construction.

Every outcome dict gains a ``"batched"`` key: ``True`` when at least one
round of that payload's solve went through the batched kernel.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import (
    BudgetExceededError,
    DeadlockError,
    ReproError,
    SolverError,
)
from repro.kperiodic.kiter import KIterMachine, solve_kiter_payload
from repro.kperiodic.solver import annotate_deadlock, finish_min_period
from repro.mcrp.batched import (
    BATCHED_ORACLES,
    batched_solve_mcrp,
    batching_available,
)
from repro.mcrp.registry import get_engine
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.obs.slowlog import observe_solve as _observe_solve
from repro.obs.trace import emit_event as _emit_event
from repro.obs.trace import span as _span

_FLEET_JOBS = _REGISTRY.counter("repro_fleet_jobs_total")
_FLEET_BATCHED = _FLEET_JOBS.labels(mode="batched")
_FLEET_DELEGATED = _FLEET_JOBS.labels(mode="delegated")
_FLEET_FAILED = _FLEET_JOBS.labels(mode="failed")
# Jobs the fleet finishes itself count as solver jobs too — delegated
# payloads are counted inside solve_kiter_payload instead, so the
# repro_solver_* families cover every route exactly once.
_SOLVER_JOBS = _REGISTRY.counter("repro_solver_jobs_total")
_SOLVER_SECONDS = _REGISTRY.histogram("repro_solver_seconds")


def _emit_job_event(payload: Mapping[str, Any],
                    outcome: Dict[str, Any]) -> None:
    """Per-job trace event for fleet-completed payloads.

    Fleet jobs interleave inside the lockstep loop, so their lifetimes
    cannot nest as context managers; each completion is recorded as one
    event adopting the payload's propagated trace context (the same
    place :func:`~repro.kperiodic.kiter.solve_kiter_payload` parents
    its ``job.solve`` span).
    """
    trace_ctx = payload.get("trace") or {}
    if not trace_ctx.get("trace_id"):
        return
    _emit_event(
        "job.solve",
        trace_id=str(trace_ctx["trace_id"]),
        parent_id=trace_ctx.get("parent_id"),
        dur=float(outcome.get("wall_time", 0.0)),
        digest=str(payload.get("digest", ""))[:12],
        engine=outcome.get("engine_used", ""),
        status=outcome.get("status", ""),
        batched=outcome.get("batched", False),
    )


class _FleetJob:
    """One payload's machine plus its bookkeeping inside the fleet."""

    __slots__ = ("index", "payload", "graph", "engine", "machine",
                 "batched_any")

    def __init__(self, index: int, payload: Mapping[str, Any], graph,
                 engine: str) -> None:
        self.index = index
        self.payload = payload
        self.graph = graph
        self.engine = engine
        self.machine: Optional[KIterMachine] = None
        self.batched_any = False


def fleet_eligible(payload: Mapping[str, Any]) -> bool:
    """Can this payload ride the batched lockstep path?

    Requires the payload to opt in (``"batched"`` defaults to True), a
    primary engine with a batched oracle, and numpy. Everything else —
    including unknown engines, which must run the per-graph fallback
    chain — goes through :func:`solve_kiter_payload` unchanged.
    """
    if not payload.get("batched", True):
        return False
    if not batching_available():
        return False
    engine = payload.get("engine", "ratio-iteration")
    if engine not in BATCHED_ORACLES:
        return False
    try:
        return get_engine(engine).batched
    except SolverError:
        return False


def solve_fleet_payloads(
    payloads: Sequence[Mapping[str, Any]],
    graphs: Optional[Sequence[Any]] = None,
) -> List[Dict[str, Any]]:
    """Solve a chunk of K-Iter payloads, batching rounds across graphs.

    ``graphs`` optionally injects already-deserialized
    :class:`~repro.model.graph.CsdfGraph` objects aligned with
    ``payloads`` (entries may be ``None``); otherwise each payload's
    ``"graph"`` dict is decoded once here. Returns one outcome dict per
    payload, in order, with the :func:`solve_kiter_payload` schema plus
    a ``"batched"`` flag.
    """
    from repro.model.graph import CsdfGraph

    payloads = list(payloads)
    outcomes: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
    if not payloads:
        return []
    # Hoisted per-chunk accounting: one clock origin and one getpid()
    # for the whole chunk instead of per payload.
    started = time.perf_counter()
    pid = os.getpid()

    def per_graph(job: _FleetJob) -> None:
        _FLEET_DELEGATED.inc()
        outcome = solve_kiter_payload(job.payload, graph=job.graph)
        outcome["batched"] = False
        outcomes[job.index] = outcome

    def failed(job: _FleetJob, status: str, exc: BaseException) -> None:
        _FLEET_FAILED.inc()
        outcomes[job.index] = {
            "status": status, "error": str(exc),
            "engine_used": job.engine, "fallback": False,
            "wall_time": time.perf_counter() - started,
            "worker_pid": pid, "batched": job.batched_any,
        }
        _SOLVER_JOBS.labels(status=status).inc()
        _SOLVER_SECONDS.observe(outcomes[job.index]["wall_time"])
        _observe_solve(outcomes[job.index]["wall_time"], job.payload,
                       outcomes[job.index])
        _emit_job_event(job.payload, outcomes[job.index])

    # Route, validate and group by primary engine (one batched kernel
    # call serves one engine's stack).
    groups: Dict[str, List[_FleetJob]] = {}
    for index, payload in enumerate(payloads):
        graph = graphs[index] if graphs is not None else None
        engine = payload.get("engine", "ratio-iteration")
        job = _FleetJob(index, payload, graph, engine)
        if not fleet_eligible(payload):
            per_graph(job)
            continue
        update_policy = payload.get("update_policy", "lcm")
        pipeline = payload.get("pipeline", "direct")
        config_error = None
        if update_policy not in ("lcm", "full-q"):
            config_error = (f"unknown update_policy {update_policy!r} "
                            "(choose 'lcm' or 'full-q')")
        elif pipeline not in ("direct", "legacy"):
            config_error = (f"unknown pipeline {pipeline!r} "
                            "(choose 'direct' or 'legacy')")
        if config_error is not None:
            # Same engine-independent fast failure as the per-graph
            # entry point (wall_time 0.0 included).
            outcomes[index] = {
                "status": "ERROR", "error": config_error,
                "engine_used": "", "fallback": False,
                "wall_time": 0.0, "worker_pid": pid, "batched": False,
            }
            continue
        if job.graph is None:
            job.graph = CsdfGraph.from_dict(payload["graph"])
        try:
            job.machine = KIterMachine(
                job.graph,
                max_rounds=payload.get("max_rounds", 100_000),
                time_budget=payload.get("time_budget"),
                initial_k=payload.get("initial_k"),
                update_policy=update_policy,
                warm_start=payload.get("warm_start", True),
                pipeline=pipeline,
            )
        except SolverError:
            per_graph(job)
            continue
        except ReproError as exc:
            failed(job, "ERROR", exc)
            continue
        groups.setdefault(engine, []).append(job)

    for engine, jobs in groups.items():
        _run_group(engine, jobs, per_graph, failed, outcomes,
                   started, pid)

    return outcomes  # type: ignore[return-value]


def _run_group(
    engine: str,
    jobs: List[_FleetJob],
    per_graph,
    failed,
    outcomes: List[Optional[Dict[str, Any]]],
    started: float,
    pid: int,
) -> None:
    """Advance one engine's machines in lockstep until all terminate."""
    pending = jobs
    fleet_round = 0
    while pending:
        batch = []
        for job in pending:
            try:
                prepared = job.machine.prepare()
            except SolverError:
                # Round cap / certification-shaped failure: the payload
                # semantics are the per-graph fallback-engine chain.
                per_graph(job)
            except BudgetExceededError as exc:
                failed(job, "TIMEOUT", exc)
            except ReproError as exc:
                failed(job, "ERROR", exc)
            else:
                batch.append((job, prepared))
        if not batch:
            break
        with _span("fleet.round", profile=True, engine=engine,
                   fleet=len(batch), round=fleet_round):
            results = batched_solve_mcrp(
                [prepared.bi_graph for _, prepared in batch],
                engine=engine,
                lower_bounds=[prepared.lower for _, prepared in batch],
            )
        fleet_round += 1
        pending = []
        for (job, prepared), out in zip(batch, results):
            if out is None:  # skipped/aborted member — defensive
                per_graph(job)
                continue
            job.batched_any = job.batched_any or out.batched
            try:
                if out.error is not None:
                    if isinstance(out.error, DeadlockError):
                        # Escalate K along the infeasible circuit and
                        # keep the machine in the fleet (may re-raise
                        # when the circuit is a genuine deadlock).
                        job.machine.absorb_deadlock(
                            annotate_deadlock(prepared, out.error)
                        )
                        pending.append(job)
                        continue
                    raise out.error
                result = finish_min_period(prepared, out.result)
                if job.machine.absorb(result):
                    final = job.machine.finalize(engine=job.engine)
                    _FLEET_BATCHED.inc()
                    outcomes[job.index] = {
                        "status": "OK",
                        "period": [final.period.numerator,
                                   final.period.denominator],
                        "K": dict(final.K),
                        "rounds": final.iteration_count,
                        "engine_iterations": final.engine_iteration_count,
                        "critical_tasks": sorted(final.critical_tasks),
                        "engine_used": job.engine, "fallback": False,
                        "wall_time": time.perf_counter() - started,
                        "worker_pid": pid, "batched": job.batched_any,
                    }
                    _SOLVER_JOBS.labels(status="OK").inc()
                    _SOLVER_SECONDS.observe(
                        outcomes[job.index]["wall_time"])
                    _observe_solve(outcomes[job.index]["wall_time"],
                                   job.payload, outcomes[job.index])
                    _emit_job_event(job.payload, outcomes[job.index])
                else:
                    pending.append(job)
            except SolverError:
                per_graph(job)
            except DeadlockError as exc:
                failed(job, "DEADLOCK", exc)
            except BudgetExceededError as exc:
                failed(job, "TIMEOUT", exc)
            except ReproError as exc:
                failed(job, "ERROR", exc)
