"""The K-expansion ``G → G̃`` (paper §3.2) and its direct compilation.

For a periodicity vector ``K``, every task ``t`` of ``G̃`` has
``ϕ̃(t) = K_t·ϕ(t)`` phases obtained by duplicating its duration vector
``K_t`` times; every buffer duplicates its production (resp. consumption)
vector ``K_t`` (resp. ``K_{t'}``) times; markings are unchanged. A
1-periodic schedule of ``G̃`` *is* a K-periodic schedule of ``G``, with
periods related by ``Ω_G = Ω_G̃ / lcm(K)`` (Theorem 3).

:func:`expand_graph` materializes ``G̃`` as a real
:class:`~repro.model.graph.CsdfGraph` — the reference path.
:func:`compile_expansion` skips it entirely: Theorem 2's useful pairs of
every expanded buffer are computed with numpy straight from the *base*
buffer plus ``(K_src, K_dst)`` (the expanded prefix sums are affine in
the tile index — see
:func:`repro.analysis.precedence.expanded_useful_pair_arrays`), emitted
as int64 ``(src, dst, cost, β)`` arc blocks with one shared per-buffer
denominator ``q̃_t·ĩ_b``, and assembled arithmetically into a
:class:`~repro.mcrp.compiled.CompiledGraph` — zero per-arc ``Fraction``
allocation; Fractions materialize lazily through the
:class:`~repro.mcrp.graph.FrozenBiValuedGraph` views only for
certification and back-mapping. Blocks are cached per ``(buffer name,
K_src, K_dst)`` (:class:`ExpansionBlockCache`), so a K-Iter round whose
escalation leaves a task's K unchanged reuses that task's blocks, and
service-pool workers reuse them across jobs sharing a graph.
"""

from __future__ import annotations

import weakref
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

try:  # the direct pipeline is numpy-only; the legacy path is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.analysis.constraint_graph import merge_parallel_candidates
from repro.analysis.precedence import expanded_useful_pair_arrays
from repro.exceptions import ModelError, ReproError
from repro.mcrp.compiled import CompiledGraph
from repro.mcrp.graph import FrozenBiValuedGraph
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.utils.rational import lcm_list

# Pre-bound registry cells: the block cache is consulted once per
# buffer per K-Iter round, so each event costs one attribute load and
# an integer add on top of the existing int counters.
_BLOCK_EVENTS = _REGISTRY.counter("repro_expansion_block_cache_total")
_BLOCK_HIT = _BLOCK_EVENTS.labels(event="hit")
_BLOCK_MISS = _BLOCK_EVENTS.labels(event="miss")
_BLOCK_EVICTION = _BLOCK_EVENTS.labels(event="eviction")
_COMPILED_EVENTS = _REGISTRY.counter("repro_expansion_compiled_total")
_COMPILED_HIT = _COMPILED_EVENTS.labels(event="hit")
_COMPILED_MISS = _COMPILED_EVENTS.labels(event="miss")

#: int64 head-room guard shared by every overflow gate of the direct
#: pipeline: whenever an intermediate product could reach this bound the
#: pipeline reports "unavailable" and the caller falls back to the
#: arbitrary-precision legacy path.
_DIRECT_INT64_GUARD = 1 << 62


def _duplicate(vector: tuple, times: int) -> tuple:
    """The paper's ``[v]^P`` vector-duplication operator."""
    return tuple(vector) * times


def validate_periodicity(graph: CsdfGraph, K: Mapping[str, int]) -> Dict[str, int]:
    """Check that ``K`` maps every task to a positive integer."""
    result: Dict[str, int] = {}
    for t in graph.tasks():
        k = K.get(t.name)
        if k is None:
            raise ModelError(f"periodicity vector misses task {t.name!r}")
        if not isinstance(k, int) or k < 1:
            raise ModelError(
                f"periodicity K[{t.name!r}] must be a positive integer, got {k!r}"
            )
        result[t.name] = k
    return result


def expand_graph(graph: CsdfGraph, K: Mapping[str, int]) -> CsdfGraph:
    """Build ``G̃`` for periodicity vector ``K``.

    Examples
    --------
    >>> from repro.model import csdf
    >>> g = csdf({"A": [1, 2]}, [("A", "A", [1, 0], [0, 1], 1)])
    >>> expand_graph(g, {"A": 2}).task("A").durations
    (1, 2, 1, 2)
    """
    K = validate_periodicity(graph, K)
    expanded = CsdfGraph(f"{graph.name}~K")
    for t in graph.tasks():
        expanded.add_task(Task(t.name, _duplicate(t.durations, K[t.name])))
    for b in graph.buffers():
        expanded.add_buffer(
            Buffer(
                name=b.name,
                source=b.source,
                target=b.target,
                production=_duplicate(b.production, K[b.source]),
                consumption=_duplicate(b.consumption, K[b.target]),
                initial_tokens=b.initial_tokens,
                serialization=b.serialization,
            )
        )
    return expanded


def expanded_repetition_vector(
    repetition: Mapping[str, int],
    K: Mapping[str, int],
) -> Dict[str, int]:
    """The paper's ``q̃_t = q_t · lcm(K) / K_t`` repetition vector of ``G̃``.

    Theorem 2's constraint denominators — and therefore the period
    normalization of Theorem 3 — assume exactly this (possibly non-minimal)
    repetition vector, so it is computed directly rather than re-derived
    from ``G̃``.
    """
    lcm_k = lcm_list(K.values())
    q_tilde: Dict[str, int] = {}
    for t, q_t in repetition.items():
        k_t = K[t]
        scaled = q_t * lcm_k
        if scaled % k_t != 0:  # pragma: no cover - lcm(K) is divisible by K_t
            raise ModelError(f"q̃ not integral for task {t!r}")
        q_tilde[t] = scaled // k_t
    return q_tilde


# ----------------------------------------------------------------------
# Direct (G, K) → CompiledGraph pipeline
# ----------------------------------------------------------------------
class ArcBlock:
    """One buffer's K-expanded constraint arcs, in buffer-local phases.

    ``src_phase``/``dst_phase`` are 0-based phases of the *expanded*
    producer/consumer (``P ∈ 0..K_src·ϕ−1``), ``cost`` the producer
    phase durations ``d(t_P)`` and ``beta`` Theorem 2's β — all int64,
    frozen read-only so cache sharing across rounds/jobs is safe. The
    per-buffer denominator ``q̃_t·ĩ_b`` is *not* part of the block: it
    depends on ``lcm(K)`` and is recomputed at assembly each round,
    which is exactly what makes the block reusable whenever
    ``(K_src, K_dst)`` did not change.
    """

    __slots__ = ("src_phase", "dst_phase", "cost", "beta")

    def __init__(self, src_phase, dst_phase, cost, beta):
        for arr in (src_phase, dst_phase, cost, beta):
            arr.setflags(write=False)
        self.src_phase = src_phase
        self.dst_phase = dst_phase
        self.cost = cost
        self.beta = beta

    @property
    def arc_count(self) -> int:
        return int(self.src_phase.shape[0])

    @property
    def cells(self) -> int:
        """int64 cells held (the cache's size accounting unit)."""
        return 4 * self.arc_count


class ExpansionBlockCache:
    """LRU cache of :class:`ArcBlock`\\ s keyed ``(buffer, K_src, K_dst)``.

    The reuse contract: an entry is valid for every future round/job on
    the **same** :class:`~repro.model.graph.CsdfGraph` object (buffers
    are immutable and graphs append-only, so a buffer name pins its
    content) as long as the producer's and consumer's K entries match
    the key — everything else (``lcm(K)``, the other tasks' K, node
    offsets, denominators) is applied at assembly time. Under K-Iter's
    lcm update policy K only ever grows along critical circuits, so a
    round typically re-derives blocks for the few escalated tasks and
    hits the cache for the rest.

    Bounded by total int64 cells (LRU eviction), not entry count, since
    block sizes vary by orders of magnitude across K.
    """

    def __init__(self, max_cells: int = 16_000_000):
        self.max_cells = max_cells
        self._blocks: "OrderedDict[Tuple[str, int, int], ArcBlock]" = (
            OrderedDict()
        )
        self._cells = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # The serialization-loop copy of the bound graph (plus its
        # parallel-pair flag), revalidated by task/buffer counts: every
        # K-Iter round re-derives the same copy otherwise, and under
        # warm service traffic that rebuild dominates small compiles.
        self._serialized: Optional[Tuple[Tuple[int, int], object, bool]] = None
        # Fully assembled compiled constraint graphs keyed by the K
        # vector (task-name sorted). K-Iter's escalation sequence is
        # deterministic per graph, so a warm worker re-assembles the
        # same few (bi_graph, space) pairs for every repeat solve; the
        # frozen compiled form is immutable and safe to share. Small
        # LRU — entries are per-K and graphs see a handful of rounds.
        self.max_compiled = 32
        self._compiled: "OrderedDict[Tuple[Tuple[str, int], ...], Tuple[object, object]]" = (
            OrderedDict()
        )
        self._compiled_counts: Optional[Tuple[int, int]] = None
        self.compiled_hits = 0
        self.compiled_misses = 0

    def compiled_for(self, graph, k_key) -> Optional[Tuple[object, object]]:
        """The assembled ``(bi_graph, space)`` for this K, if cached."""
        if self._compiled_counts != (graph.task_count, graph.buffer_count):
            self.compiled_misses += 1
            _COMPILED_MISS.inc()
            return None
        built = self._compiled.get(k_key)
        if built is None:
            self.compiled_misses += 1
            _COMPILED_MISS.inc()
            return None
        self._compiled.move_to_end(k_key)
        self.compiled_hits += 1
        _COMPILED_HIT.inc()
        return built

    def store_compiled(self, graph, k_key, built) -> None:
        counts = (graph.task_count, graph.buffer_count)
        if self._compiled_counts != counts:
            self._compiled.clear()
            self._compiled_counts = counts
        self._compiled[k_key] = built
        while len(self._compiled) > self.max_compiled:
            self._compiled.popitem(last=False)

    def serialized_for(self, graph) -> Optional[Tuple[object, bool]]:
        """The cached ``with_serialization_loops()`` copy, if still valid."""
        entry = self._serialized
        if entry is not None and entry[0] == (
            graph.task_count, graph.buffer_count
        ):
            return entry[1], entry[2]
        return None

    def store_serialized(self, graph, work, shared_pairs: bool) -> None:
        self._serialized = (
            (graph.task_count, graph.buffer_count), work, shared_pairs
        )

    def get(self, name: str, k_src: int, k_dst: int) -> Optional[ArcBlock]:
        block = self._blocks.get((name, k_src, k_dst))
        if block is None:
            self.misses += 1
            _BLOCK_MISS.inc()
            return None
        self._blocks.move_to_end((name, k_src, k_dst))
        self.hits += 1
        _BLOCK_HIT.inc()
        return block

    def put(self, name: str, k_src: int, k_dst: int, block: ArcBlock) -> None:
        key = (name, k_src, k_dst)
        old = self._blocks.pop(key, None)
        if old is not None:  # pragma: no cover - put-after-get misses this
            self._cells -= old.cells
        self._blocks[key] = block
        self._cells += block.cells
        while self._cells > self.max_cells and len(self._blocks) > 1:
            _, evicted = self._blocks.popitem(last=False)
            self._cells -= evicted.cells
            self.evictions += 1
            _BLOCK_EVICTION.inc()

    def clear(self) -> None:
        self._blocks.clear()
        self._cells = 0

    def invalidate_buffer(self, name: str) -> int:
        """Drop every cached block of buffer ``name`` (any ``K`` pair).

        The targeted edit surface of :class:`repro.dse.DseSession`: an
        edit to one buffer's content (rates, marking, or — through the
        bounded-buffer transformation — capacity) stales exactly the
        blocks keyed ``(name, *, *)``; everything else remains valid
        because a block depends only on its own buffer plus
        ``(K_src, K_dst)``. The assembled memos are *not* touched here —
        they aggregate every buffer, so the caller drops them once per
        edit batch via :meth:`invalidate_assembled`. Returns the number
        of blocks dropped (the ``session.*`` invalidation metric).
        """
        stale = [key for key in self._blocks if key[0] == name]
        for key in stale:
            block = self._blocks.pop(key)
            self._cells -= block.cells
        return len(stale)

    def invalidate_assembled(self) -> None:
        """Drop the assembled-graph memo and the serialization copy.

        Both are aggregates of the whole graph (and validated only by
        task/buffer *counts*), so any content edit stales them even
        when the counts are unchanged. Per-buffer blocks survive — the
        reuse they carry is the point of selective invalidation.
        """
        self._compiled.clear()
        self._compiled_counts = None
        self._serialized = None

    def invalidate_compiled(self) -> None:
        """Drop only the assembled-K memo, keeping the serialized copy."""
        self._compiled.clear()
        self._compiled_counts = None

    def patch_serialized(self, graph, *, tasks=None, buffers=None) -> bool:
        """Swap edited tasks/buffers into the serialization-loop memo.

        A *content* edit (rates, marking, durations — same topology)
        leaves the serialization copy structurally identical: only the
        edited objects differ, and ``shared_pairs`` is a pure topology
        property. Rebuilding the memoized work graph with the
        replacements swapped in (one shared-reference pass) is much
        cheaper than re-deriving ``with_serialization_loops()`` from
        scratch on the next compile — the steady-state win of
        :class:`repro.dse.DseSession` edits. On any failure the memo is
        dropped (never left stale): returns ``False`` and the next
        compile rebuilds cold.
        """
        entry = self._serialized
        if entry is None:
            return False
        counts, work, shared_pairs = entry
        if counts != (graph.task_count, graph.buffer_count):
            self._serialized = None
            return False
        from repro.transforms.surgery import rebuild_graph

        try:
            new_work = rebuild_graph(
                work, tasks=tasks or None, buffers=buffers or None)
        except ReproError:
            self._serialized = None
            return False
        self._serialized = (counts, new_work, shared_pairs)
        return True

    def __len__(self) -> int:
        return len(self._blocks)

    def stats(self) -> Dict[str, int]:
        return {
            "blocks": len(self._blocks),
            "cells": self._cells,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Per-graph block caches: keyed by the graph *object* (weakly — a
#: collected graph drops its blocks), so K-Iter rounds on one graph and
#: service-pool jobs reusing a worker's parsed graph share one cache.
_GRAPH_CACHES: "weakref.WeakKeyDictionary[CsdfGraph, ExpansionBlockCache]" = (
    weakref.WeakKeyDictionary()
)


def expansion_cache_for(graph: CsdfGraph) -> ExpansionBlockCache:
    """The block cache bound to ``graph`` (created on first use)."""
    cache = _GRAPH_CACHES.get(graph)
    if cache is None:
        cache = ExpansionBlockCache()
        _GRAPH_CACHES[graph] = cache
    return cache


class _ExpandedLabels(Sequence):
    """Lazy ``(task, expanded phase)`` labels of an expanded node space.

    Semantically the list the legacy builder materializes, computed on
    access instead (labels are only read for critical circuits and
    deadlock certificates — a handful of nodes out of ``Σ K_t·ϕ(t)``).
    """

    __slots__ = ("_space",)

    def __init__(self, space: "ExpandedNodeSpace"):
        self._space = space

    def __len__(self) -> int:
        return self._space.node_count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._space.label(i) for i in range(len(self))[index]]
        if index < 0:
            index += len(self)
        return self._space.label(index)

    def __iter__(self):
        for name, start, count in self._space.spans():
            for p in range(1, count + 1):
                yield (name, p)


class ExpandedNodeSpace:
    """Node layout of the K-expanded constraint graph (task-major).

    Task ``t`` owns the contiguous node range
    ``[offset(t), offset(t) + K_t·ϕ(t))`` in task insertion order — the
    exact layout the legacy ``build_constraint_graph`` produces — and
    node ``offset(t) + P`` is the first execution ``⟨t_{P+1}, 1⟩`` of
    expanded phase ``P+1``.
    """

    __slots__ = ("_names", "_starts", "_offsets", "node_count")

    def __init__(self, phase_counts: Sequence[Tuple[str, int]]):
        self._names: List[str] = []
        self._starts: List[int] = []
        self._offsets: Dict[str, int] = {}
        total = 0
        for name, count in phase_counts:
            self._names.append(name)
            self._starts.append(total)
            self._offsets[name] = total
            total += count
        self.node_count = total

    def offset(self, task: str) -> int:
        return self._offsets[task]

    def spans(self):
        """Yield ``(task, start, phase count)`` per task in layout order."""
        for i, name in enumerate(self._names):
            start = self._starts[i]
            end = (
                self._starts[i + 1]
                if i + 1 < len(self._starts)
                else self.node_count
            )
            yield name, start, end - start

    def label(self, node: int) -> Tuple[str, int]:
        if not 0 <= node < self.node_count:
            raise IndexError(node)
        i = bisect_right(self._starts, node) - 1
        return (self._names[i], node - self._starts[i] + 1)

    @property
    def labels(self) -> Sequence[Hashable]:
        return _ExpandedLabels(self)

    def node_index(self) -> Dict[Tuple[str, int], int]:
        """The dense ``(task, expanded phase) → node id`` dict.

        Materialized on demand (schedule extraction needs the full map;
        nothing else does).
        """
        return {
            (name, p): start + p - 1
            for name, start, count in self.spans()
            for p in range(1, count + 1)
        }


def compile_expansion(
    graph: CsdfGraph,
    K: Mapping[str, int],
    repetition: Mapping[str, int],
    *,
    cache: Optional[ExpansionBlockCache] = None,
    serialize: bool = True,
    merge_parallel: bool = True,
) -> Optional[Tuple[FrozenBiValuedGraph, ExpandedNodeSpace]]:
    """Compile the constraint graph of ``G̃`` directly from ``(G, K)``.

    Produces the same graph as ``build_constraint_graph(expand_graph(G,
    K), repetition)`` — identical compiled ``scale``/``cost``/``transit``
    arrays, pinned by the parity suite — without materializing ``G̃`` or
    any per-arc ``Fraction``:

    1. per buffer, the expanded useful pairs come from the affine-tile
       sweep (cached in ``cache`` under ``(buffer, K_src, K_dst)``);
    2. blocks are offset into the task-major node space and concatenated
       as int64 ``(src, dst, cost, β)`` arrays with one shared
       denominator ``q̃_t·ĩ_b`` per buffer;
    3. parallel arcs merge through the shared vectorized lexsort pass;
    4. the global scale is the lcm of the per-arc *reduced* denominators
       ``den/gcd(β, den)`` (what ``Fraction`` normalization would have
       produced), and the scaled integer arrays feed
       :meth:`~repro.mcrp.compiled.CompiledGraph.from_int64_arrays`.

    ``repetition`` must be the expanded repetition vector ``q̃`` (see
    :func:`expanded_repetition_vector`) — the same one the legacy path
    receives.

    Returns ``None`` when the pipeline is unavailable — no numpy, or an
    int64 overflow gate tripped — in which case the caller runs the
    legacy expand+build path, which is exact at any magnitude.
    """
    if _np is None:
        return None
    K = validate_periodicity(graph, K)
    work = None
    shared_pairs: Optional[bool] = None
    if serialize and cache is not None:
        hit = cache.serialized_for(graph)
        if hit is not None:
            work, shared_pairs = hit
    if work is None:
        work = graph.with_serialization_loops() if serialize else graph

    space = ExpandedNodeSpace(
        [(t.name, K[t.name] * t.phase_count) for t in work.tasks()]
    )

    if shared_pairs is None:
        pair_count: Dict[Tuple[str, str], int] = {}
        for b in work.buffers():
            key = (b.source, b.target)
            pair_count[key] = pair_count.get(key, 0) + 1
        shared_pairs = any(count > 1 for count in pair_count.values())
        if serialize and cache is not None:
            cache.store_serialized(graph, work, shared_pairs)

    parts_src: List = []
    parts_dst: List = []
    parts_cost: List = []
    parts_beta: List = []
    den_vals: List[int] = []
    den_lens: List[int] = []
    for b in work.buffers():
        k_src = K[b.source]
        k_dst = K[b.target]
        den = repetition[b.source] * k_src * b.total_production
        if den >= _DIRECT_INT64_GUARD:
            return None
        block = cache.get(b.name, k_src, k_dst) if cache is not None else None
        if block is None:
            p, pp, beta = expanded_useful_pair_arrays(b, k_src, k_dst)
            durations = _np.tile(
                _np.asarray(work.task(b.source).durations, dtype=_np.int64),
                k_src,
            )
            block = ArcBlock(p, pp, durations[p], beta)
            if cache is not None:
                cache.put(b.name, k_src, k_dst, block)
        parts_src.append(block.src_phase + space.offset(b.source))
        parts_dst.append(block.dst_phase + space.offset(b.target))
        parts_cost.append(block.cost)
        parts_beta.append(block.beta)
        den_vals.append(den)
        den_lens.append(block.arc_count)

    if parts_src:
        srcs = _np.concatenate(parts_src)
        dsts = _np.concatenate(parts_dst)
        costs = _np.concatenate(parts_cost)
        betas = _np.concatenate(parts_beta)
        # One repeat instead of one np.full per buffer: the per-buffer
        # denominator q̃_t·ĩ_b is constant across a block's arcs.
        denoms = _np.repeat(
            _np.asarray(den_vals, dtype=_np.int64),
            _np.asarray(den_lens, dtype=_np.int64),
        )
    else:
        srcs = dsts = costs = betas = _np.empty(0, dtype=_np.int64)
        denoms = _np.empty(0, dtype=_np.int64)

    if merge_parallel and shared_pairs and srcs.shape[0]:
        merged = merge_parallel_candidates(
            srcs, dsts, costs, betas, denoms, space.node_count
        )
        if merged is None:
            return None
        srcs, dsts, costs, betas, denoms = merged

    # Global scale = lcm of the reduced per-arc denominators — exactly
    # the lcm of Fraction(−β, den).denominator the legacy compile
    # derives, computed without constructing a single Fraction.
    if srcs.shape[0]:
        g = _np.gcd(betas, denoms)  # gcd(|β|, den); β=0 ⇒ den ⇒ reduced 1
        reduced_den = denoms // g
        scale = lcm_list(int(d) for d in _np.unique(reduced_den))
        if scale >= _DIRECT_INT64_GUARD:
            return None
        beta_red = betas // g  # exact: g divides β
        factor = scale // reduced_den
        max_transit = int(_np.abs(beta_red).max()) * int(factor.max())
        max_cost = int(costs.max()) * scale
        if (
            max_transit >= _DIRECT_INT64_GUARD
            or max_cost >= _DIRECT_INT64_GUARD
        ):
            return None
        transit_scaled = -(beta_red * factor)
        cost_scaled = costs * scale
    else:
        scale = 1
        transit_scaled = cost_scaled = _np.empty(0, dtype=_np.int64)

    compiled = CompiledGraph.from_int64_arrays(
        node_count=space.node_count,
        labels=space.labels,
        src=srcs,
        dst=dsts,
        scale=scale,
        cost=cost_scaled,
        transit=transit_scaled,
    )
    return FrozenBiValuedGraph(compiled), space
