"""The K-expansion ``G → G̃`` (paper §3.2).

For a periodicity vector ``K``, every task ``t`` of ``G̃`` has
``ϕ̃(t) = K_t·ϕ(t)`` phases obtained by duplicating its duration vector
``K_t`` times; every buffer duplicates its production (resp. consumption)
vector ``K_t`` (resp. ``K_{t'}``) times; markings are unchanged. A
1-periodic schedule of ``G̃`` *is* a K-periodic schedule of ``G``, with
periods related by ``Ω_G = Ω_G̃ / lcm(K)`` (Theorem 3).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.exceptions import ModelError
from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task
from repro.utils.rational import lcm_list


def _duplicate(vector: tuple, times: int) -> tuple:
    """The paper's ``[v]^P`` vector-duplication operator."""
    return tuple(vector) * times


def validate_periodicity(graph: CsdfGraph, K: Mapping[str, int]) -> Dict[str, int]:
    """Check that ``K`` maps every task to a positive integer."""
    result: Dict[str, int] = {}
    for t in graph.tasks():
        k = K.get(t.name)
        if k is None:
            raise ModelError(f"periodicity vector misses task {t.name!r}")
        if not isinstance(k, int) or k < 1:
            raise ModelError(
                f"periodicity K[{t.name!r}] must be a positive integer, got {k!r}"
            )
        result[t.name] = k
    return result


def expand_graph(graph: CsdfGraph, K: Mapping[str, int]) -> CsdfGraph:
    """Build ``G̃`` for periodicity vector ``K``.

    Examples
    --------
    >>> from repro.model import csdf
    >>> g = csdf({"A": [1, 2]}, [("A", "A", [1, 0], [0, 1], 1)])
    >>> expand_graph(g, {"A": 2}).task("A").durations
    (1, 2, 1, 2)
    """
    K = validate_periodicity(graph, K)
    expanded = CsdfGraph(f"{graph.name}~K")
    for t in graph.tasks():
        expanded.add_task(Task(t.name, _duplicate(t.durations, K[t.name])))
    for b in graph.buffers():
        expanded.add_buffer(
            Buffer(
                name=b.name,
                source=b.source,
                target=b.target,
                production=_duplicate(b.production, K[b.source]),
                consumption=_duplicate(b.consumption, K[b.target]),
                initial_tokens=b.initial_tokens,
                serialization=b.serialization,
            )
        )
    return expanded


def expanded_repetition_vector(
    repetition: Mapping[str, int],
    K: Mapping[str, int],
) -> Dict[str, int]:
    """The paper's ``q̃_t = q_t · lcm(K) / K_t`` repetition vector of ``G̃``.

    Theorem 2's constraint denominators — and therefore the period
    normalization of Theorem 3 — assume exactly this (possibly non-minimal)
    repetition vector, so it is computed directly rather than re-derived
    from ``G̃``.
    """
    lcm_k = lcm_list(K.values())
    q_tilde: Dict[str, int] = {}
    for t, q_t in repetition.items():
        k_t = K[t]
        scaled = q_t * lcm_k
        if scaled % k_t != 0:  # pragma: no cover - lcm(K) is divisible by K_t
            raise ModelError(f"q̃ not integral for task {t!r}")
        q_tilde[t] = scaled // k_t
    return q_tilde
