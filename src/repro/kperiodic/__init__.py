"""K-periodic scheduling and the K-Iter algorithm (the paper's §3).

* :mod:`repro.kperiodic.expansion` — the ``G → G̃`` transformation that
  reduces K-periodic scheduling of ``G`` to 1-periodic scheduling of ``G̃``
  (Theorem 3).
* :mod:`repro.kperiodic.solver` — minimum period for a fixed periodicity
  vector K (Theorem 2 + MCRP).
* :mod:`repro.kperiodic.optimality` — the critical-circuit optimality test
  (Theorem 4).
* :mod:`repro.kperiodic.kiter` — Algorithm 1: iterate K until optimal.
* :mod:`repro.kperiodic.fleet` — lockstep K-Iter over payload chunks via
  the batched MCRP kernels.
* :mod:`repro.kperiodic.schedule` — concrete K-periodic schedules.
"""

from repro.kperiodic.expansion import (
    ExpansionBlockCache,
    compile_expansion,
    expand_graph,
    expanded_repetition_vector,
    expansion_cache_for,
)
from repro.kperiodic.fleet import fleet_eligible, solve_fleet_payloads
from repro.kperiodic.kiter import (
    KIterMachine,
    KIterResult,
    solve_kiter_payload,
    throughput_kiter,
)
from repro.kperiodic.optimality import critical_qbar, optimality_test
from repro.kperiodic.schedule import KPeriodicSchedule
from repro.kperiodic.solver import KPeriodicResult, min_period_for_k

__all__ = [
    "ExpansionBlockCache",
    "compile_expansion",
    "expand_graph",
    "expanded_repetition_vector",
    "expansion_cache_for",
    "KIterMachine",
    "KIterResult",
    "fleet_eligible",
    "solve_fleet_payloads",
    "solve_kiter_payload",
    "throughput_kiter",
    "critical_qbar",
    "optimality_test",
    "KPeriodicSchedule",
    "KPeriodicResult",
    "min_period_for_k",
]
