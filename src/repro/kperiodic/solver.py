"""Minimum period of a K-periodic schedule (Theorem 2 + MCRP).

For a fixed periodicity vector K the minimum feasible period of a
K-periodic schedule of ``G`` equals ``λ*/lcm(K)``, where ``λ*`` is the
maximum cycle ratio of the bi-valued constraint graph of the expansion
``G̃`` (paper §3.1–3.3). The solver returns the exact period, a critical
circuit (needed by the optimality test), and a concrete feasible schedule
built from the longest-path potentials at ``λ*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.consistency import repetition_vector
from repro.analysis.constraint_graph import build_constraint_graph
from repro.exceptions import DeadlockError, SolverError
from repro.kperiodic.expansion import (
    ExpansionBlockCache,
    compile_expansion,
    expand_graph,
    expanded_repetition_vector,
    validate_periodicity,
)
from repro.kperiodic.schedule import KPeriodicSchedule
from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.registry import get_engine, solve_mcrp
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.utils.rational import lcm_list

_ENGINE_ITERATIONS = _REGISTRY.counter("repro_engine_iterations_total")


@dataclass
class KPeriodicResult:
    """Outcome of a fixed-K minimum-period computation.

    Attributes
    ----------
    omega:
        Normalized minimum period ``Ω_G = λ*/lcm(K)`` (0 when the
        constraint graph is acyclic, i.e. the throughput is unbounded).
    omega_expanded:
        ``Ω_G̃ = λ*`` before normalization.
    critical_tasks:
        Tasks traversed by the critical circuit (input of Theorem 4).
    critical_nodes:
        The circuit's ``(task, expanded phase)`` labels, in order.
    schedule:
        A feasible K-periodic schedule achieving ``omega`` (``None`` when
        ``build_schedule=False`` was requested or Ω = 0).
    graph_nodes / graph_arcs:
        Size of the bi-valued constraint graph (for the tables/ablations).
    """

    K: Dict[str, int]
    omega: Fraction
    omega_expanded: Fraction
    critical_tasks: Set[str] = field(default_factory=set)
    critical_nodes: List[Tuple[str, int]] = field(default_factory=list)
    schedule: Optional[KPeriodicSchedule] = None
    graph_nodes: int = 0
    graph_arcs: int = 0
    engine_iterations: int = 0

    @property
    def throughput(self) -> Optional[Fraction]:
        """``1/Ω_G``; ``None`` encodes unbounded throughput."""
        if self.omega == 0:
            return None
        return Fraction(1, 1) / self.omega


@dataclass
class PreparedMinPeriod:
    """The engine-independent half of a fixed-K solve.

    :func:`prepare_min_period` builds the bi-valued constraint graph and
    the certified warm-start bound; any MCRP engine — per-graph
    :func:`~repro.mcrp.registry.solve_mcrp` or the batched fleet kernel
    (:func:`repro.mcrp.batched.batched_solve_mcrp`) — may then produce
    the :class:`~repro.mcrp.graph.CycleResult` that
    :func:`finish_min_period` packages. Splitting the solve this way is
    what lets the fleet driver run many K-Iter instances in lockstep
    with *one* stacked MCRP solve per round while sharing every line of
    the per-graph control flow.
    """

    graph: object
    K: Dict[str, int]
    repetition: Dict[str, int]
    lcm_k: int
    bi_graph: BiValuedGraph
    space: object
    node_index: Optional[Dict[Tuple[str, int], int]]
    lower: Fraction


def prepare_min_period(
    graph,
    K: Mapping[str, int],
    *,
    repetition: Optional[Dict[str, int]] = None,
    warm_start: Optional[Fraction] = None,
    pipeline: str = "direct",
    expansion_cache: Optional[ExpansionBlockCache] = None,
) -> PreparedMinPeriod:
    """Build the constraint graph and warm-start bound for a fixed K."""
    if pipeline not in ("direct", "legacy"):
        raise SolverError(
            f"unknown pipeline {pipeline!r} (choose 'direct' or 'legacy')"
        )
    K = validate_periodicity(graph, K)
    if repetition is None:
        repetition = repetition_vector(graph)
    lcm_k = lcm_list(K.values())

    q_tilde = expanded_repetition_vector(repetition, K)
    node_index: Optional[Dict[Tuple[str, int], int]] = None
    space = None
    if pipeline == "direct":
        # Assembled-graph memo: a warm worker replays the same
        # deterministic K sequence on every repeat solve of a graph,
        # so the frozen compiled form is reused outright — the block
        # cache below only pays off within one escalation run.
        built = None
        k_key = None
        if expansion_cache is not None:
            k_key = tuple(sorted(K.items()))
            built = expansion_cache.compiled_for(graph, k_key)
        if built is None:
            built = compile_expansion(
                graph, K, q_tilde, cache=expansion_cache
            )
            if built is not None and k_key is not None:
                expansion_cache.store_compiled(graph, k_key, built)
        if built is not None:
            bi_graph, space = built
    if space is None:
        expanded = expand_graph(graph, K)
        bi_graph, node_index = build_constraint_graph(
            expanded, q_tilde, serialize=True
        )
    # Warm start: the serialization self-loop of task t is a real cycle of
    # the constraint graph with exact ratio lcm(K)·q_t·Σ_p d(t_p), so the
    # max over tasks is a certified lower bound on λ* (huge head start —
    # utilization usually lands within a few jumps of the answer).
    utilization = max(
        (repetition[t.name] * t.iteration_duration for t in graph.tasks()),
        default=0,
    )
    # Back the bound off by 1/2 so the utilization cycle itself is still a
    # *strictly* positive cycle at the starting λ — the engine then jumps
    # onto it immediately instead of converging without a certificate.
    lower = Fraction(utilization * lcm_k) - Fraction(1, 2)
    if warm_start is not None:
        # Same 1/2 backoff: when the seed *is* λ* (round i's circuit is
        # still critical at round i+1's scale), the critical cycle stays
        # strictly positive at the start and is certified in one jump.
        lower = max(lower, Fraction(warm_start) - Fraction(1, 2))
    return PreparedMinPeriod(
        graph=graph, K=dict(K), repetition=dict(repetition), lcm_k=lcm_k,
        bi_graph=bi_graph, space=space, node_index=node_index, lower=lower,
    )


def annotate_deadlock(
    prepared: PreparedMinPeriod, exc: DeadlockError
) -> DeadlockError:
    """Attach task names of the infeasible circuit for K escalation."""
    if exc.cycle_nodes and exc.critical_tasks is None:
        exc.critical_tasks = {
            prepared.bi_graph.labels[n][0] for n in exc.cycle_nodes
        }
    return exc


def finish_min_period(
    prepared: PreparedMinPeriod,
    result: CycleResult,
    *,
    build_schedule: bool = False,
) -> KPeriodicResult:
    """Package an engine's :class:`CycleResult` as a fixed-K outcome."""
    bi_graph = prepared.bi_graph
    lcm_k = prepared.lcm_k
    if result.is_acyclic:
        omega_expanded = Fraction(0)
        critical_nodes: List[Tuple[str, int]] = []
    else:
        omega_expanded = result.ratio
        critical_nodes = [bi_graph.labels[n] for n in result.cycle_nodes]

    omega = omega_expanded / lcm_k
    out = KPeriodicResult(
        K=dict(prepared.K),
        omega=omega,
        omega_expanded=omega_expanded,
        critical_tasks={task for task, _phase in critical_nodes},
        critical_nodes=critical_nodes,
        graph_nodes=bi_graph.node_count,
        graph_arcs=bi_graph.arc_count,
        engine_iterations=result.iterations,
    )
    if build_schedule and omega > 0:
        node_index = prepared.node_index
        if node_index is None:
            # Direct pipeline: the dense (task, phase) → node map is
            # only materialized when a schedule actually needs it.
            node_index = prepared.space.node_index()
        out.schedule = _extract_schedule(
            prepared.graph, prepared.K, prepared.repetition, bi_graph,
            node_index, omega_expanded, lcm_k,
        )
    return out


def solve_prepared_min_period(
    prepared: PreparedMinPeriod, engine: str = "ratio-iteration"
) -> KPeriodicResult:
    """Run one per-graph engine solve over an already prepared instance."""
    info = get_engine(engine)
    try:
        result = solve_mcrp(
            prepared.bi_graph, info, lower_bound=prepared.lower
        )
    except DeadlockError as exc:
        raise annotate_deadlock(prepared, exc)
    _ENGINE_ITERATIONS.labels(engine=engine).inc(result.iterations)
    return finish_min_period(prepared, result)


def min_period_for_k(
    graph,
    K: Mapping[str, int],
    *,
    engine: str = "ratio-iteration",
    build_schedule: bool = True,
    repetition: Optional[Dict[str, int]] = None,
    warm_start: Optional[Fraction] = None,
    pipeline: str = "direct",
    expansion_cache: Optional[ExpansionBlockCache] = None,
) -> KPeriodicResult:
    """Exact minimum period of a K-periodic schedule of ``graph``.

    Parameters
    ----------
    graph:
        A consistent CSDFG.
    K:
        Periodicity vector (positive integer per task). ``K ≡ 1`` gives
        the 1-periodic method of [Bodin et al. 2013]; ``K = q`` gives the
        exact throughput directly (at exponential-size cost).
    engine:
        Registered MCRP engine name (see
        :func:`repro.mcrp.registry.engine_names`): ``"ratio-iteration"``
        (exact, default), ``"hybrid"`` (float prefilter + exact
        certification — the fast path on large graphs), ``"howard"``,
        ``"lawler"``, ``"karp"``, ``"bellman"``, or any engine
        registered by the embedding application.
    build_schedule:
        Also extract start times (longest-path potentials at λ*).
    warm_start:
        A seed for the engine's ascending λ search in the *expanded*
        scale (``λ = Ω·lcm(K)``), typically the certified ``λ*`` of the
        previous K-Iter round. Used only when it beats the utilization
        bound. Exactness never depends on it: an overshooting seed is
        detected by the engines (no positive cycle from an uncertified
        start) and the search restarts, and the SCC champion used for
        pruning is replaced by the first component's certified ratio
        before any probe relies on it.
    pipeline:
        ``"direct"`` (default) compiles the constraint graph of ``G̃``
        straight from ``(G, K)`` with zero per-arc ``Fraction``
        allocation (:func:`repro.kperiodic.expansion.compile_expansion`)
        and falls back automatically when that pipeline is unavailable
        (no numpy, int64 overflow gates); ``"legacy"`` always
        materializes ``G̃`` and builds the graph through
        :func:`~repro.analysis.constraint_graph.build_constraint_graph`
        — the reference oracle the parity suite pins the direct path
        against. Both produce identical compiled arrays and λ*.
    expansion_cache:
        Optional :class:`~repro.kperiodic.expansion.ExpansionBlockCache`
        for the direct pipeline — K-Iter passes the graph's cache so
        rounds recompute only the blocks whose tasks escalated.

    Raises
    ------
    SolverError
        If ``engine`` names no registered engine, or ``pipeline`` is
        neither ``"direct"`` nor ``"legacy"``.
    DeadlockError
        If no feasible period exists (the graph deadlocks).
    InconsistentGraphError
        If the graph has no repetition vector.
    """
    info = get_engine(engine)
    prepared = prepare_min_period(
        graph, K, repetition=repetition, warm_start=warm_start,
        pipeline=pipeline, expansion_cache=expansion_cache,
    )
    try:
        # The registry pipeline solves per strongly connected component
        # with champion pruning when the engine supports it (acyclic
        # regions cost nothing, components that cannot beat the best
        # ratio are rejected by one oracle probe); the utilization bound
        # seeds the champion, and warm-starts engines that take bounds.
        result: CycleResult = solve_mcrp(
            prepared.bi_graph, info, lower_bound=prepared.lower
        )
    except DeadlockError as exc:
        # Annotate the infeasible circuit with task names so K-Iter can
        # escalate K along it (a small-K infeasibility is not necessarily
        # a graph deadlock — see exceptions.DeadlockError).
        raise annotate_deadlock(prepared, exc)
    _ENGINE_ITERATIONS.labels(engine=engine).inc(result.iterations)
    return finish_min_period(prepared, result, build_schedule=build_schedule)


def _extract_schedule(
    graph,
    K: Dict[str, int],
    repetition: Dict[str, int],
    bi_graph: BiValuedGraph,
    node_index: Dict[Tuple[str, int], int],
    omega_expanded: Fraction,
    lcm_k: int,
) -> KPeriodicSchedule:
    """Start times from exact longest-path potentials at ``λ = Ω_G̃``.

    At λ*, the weights ``w(e) = L(e) − λ*·H(e)`` admit no positive cycle,
    so the longest-path fixpoint from an all-zero source exists; it is the
    earliest K-periodic schedule for that period.
    """
    dist = longest_path_potentials(bi_graph, omega_expanded)
    return KPeriodicSchedule.from_potentials(
        graph, K, repetition, node_index, omega_expanded / lcm_k, dist
    )


#: Below this node count the numpy Jacobi sweeps cost more in array
#: set-up than the pure-Python relaxation they replace.
_MIN_VECTOR_NODES = 64
#: Jacobi sweep budget: each sweep settles one more level of path
#: depth, so wide/shallow constraint graphs converge in a handful of
#: sweeps while serialized chains are depth ~n — past the budget the
#: queue-based relaxation finishes from the partially converged state
#: instead of paying Θ(depth) reduceat calls.
_MAX_JACOBI_SWEEPS = 32


def longest_path_potentials(
    bi_graph: BiValuedGraph,
    omega_expanded: Fraction,
) -> List[Fraction]:
    """Exact longest paths from an implicit zero source at ``λ = a/b``.

    The scheduling pass after λ* certification: with the compiled scale
    ``D``, the weight of arc ``i`` is ``(b·L'_i − a·H'_i) / (b·D)`` —
    the common positive denominator is factored out of the relaxation
    and restored once at the end, so no ``Fraction`` is ever constructed
    in a hot loop. The integer relaxation itself is numpy-vectorized
    (one ``maximum.reduceat`` Jacobi sweep per path length) whenever
    the weights provably fit int64; the queue-based pure-Python
    relaxation is the fallback and the reference.

    Raises :class:`SolverError` when a positive cycle survives at the
    given λ — i.e. the caller passed an uncertified (too small) ratio.
    """
    compiled = bi_graph.compile()
    a, b = omega_expanded.numerator, omega_expanded.denominator
    dist, converged = _potentials_numpy(compiled, a, b)
    if not converged:
        weights = compiled.parametric_weights(a, b)
        dist = _potentials_python(compiled, weights, seed=dist)
    denom = b * compiled.scale
    return [Fraction(d, denom) for d in dist]


def _potentials_numpy(
    compiled, lam_num: int, lam_den: int
) -> Tuple[Optional[List[int]], bool]:
    """Jacobi longest-path sweeps over the compiled numpy arrays.

    The parametric weights ``b·L' − a·H'`` are formed vectorized from
    the compiled int64 mirrors (never as a Python list). ``dist`` after
    sweep ``k`` dominates every ≤k-arc walk value, so with no positive
    cycle the fixpoint is reached within ``n`` sweeps (longest simple
    path has ``n − 1`` arcs) and one extra quiet sweep proves it.
    Returns ``(dist, True)`` on convergence. ``(None, False)`` means
    the vectorized pass never engaged (no numpy, too small, or the
    walk sums could overflow int64); ``(partial, False)`` means the
    sweep budget ran out first — either way the caller finishes with
    the queue-based relaxation, seeding it with the partial distances
    when there are any (every entry is a real walk value, hence a
    valid intermediate relaxation state).
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy present in CI
        return None, False
    n = compiled.node_count
    if (
        n < _MIN_VECTOR_NODES
        or not compiled.arc_count
        or not (-(1 << 62) < lam_num < (1 << 62) and lam_den < (1 << 62))
        or not compiled.ensure_numpy()
        or compiled.np_cost is None
    ):
        return None, False
    bound = compiled.parametric_weight_bound(lam_num, lam_den)
    if bound >= (1 << 62) // (n + 2):  # keep every walk sum inside int64
        return None, False
    w = lam_den * compiled.np_cost - lam_num * compiled.np_transit
    w_s = w[compiled.dst_order]
    src_s = compiled.src_sorted
    dst_unique = compiled.dst_unique
    seg_starts = compiled.seg_starts
    dist = np.zeros(n, dtype=np.int64)
    budget = min(n + 1, _MAX_JACOBI_SWEEPS)
    for _sweep in range(budget):
        seg_best = np.maximum.reduceat(dist[src_s] + w_s, seg_starts)
        improved = seg_best > dist[dst_unique]
        if not improved.any():
            return dist.tolist(), True
        touched = dst_unique[improved]
        dist[touched] = seg_best[improved]
    if budget > n:
        raise SolverError("positive cycle at certified λ*: engine bug")
    return dist.tolist(), False


def _potentials_python(
    compiled,
    weights: List[int],
    seed: Optional[List[int]] = None,
) -> List[int]:
    """Queue-based Bellman–Ford longest paths (exact reference).

    ``seed`` (optional) is an intermediate relaxation state — every
    entry a genuine walk value from the zero source, component-wise at
    most the fixpoint — from which the relaxation resumes; the least
    fixpoint reached is the same either way.
    """
    from collections import deque

    n = compiled.node_count
    out_arcs = compiled.out_arcs
    arc_dst = compiled.dst
    dist: List[int] = [0] * n if seed is None else list(seed)
    in_queue = [True] * n
    relaxations = [0] * n
    queue = deque(range(n))
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = dist[u]
        for arc in out_arcs[u]:
            v = arc_dst[arc]
            candidate = du + weights[arc]
            if candidate > dist[v]:
                dist[v] = candidate
                relaxations[v] += 1
                if relaxations[v] > n + 1:
                    raise SolverError(
                        "positive cycle at certified λ*: engine bug"
                    )
                if not in_queue[v]:
                    in_queue[v] = True
                    queue.append(v)
    return dist
