"""K-Iter (Algorithm 1): exact CSDFG throughput by iterated K-periodicity.

Start from the 1-periodic relaxation (``K ≡ 1``); at each round, compute
the minimum period for the current K and a critical circuit; if the
circuit passes Theorem 4's test, the throughput ``lcm(K)/R(c)`` is exact
and the algorithm stops, otherwise the periodicity of the circuit's tasks
is raised (``K_t ← lcm(K_t, q̄_t)``) and the round repeats.

Convergence: every round either terminates or strictly increases some
``K_t``; a circuit whose tasks were updated passes the test whenever it is
critical again, and K is bounded component-wise by ``q``, so the number of
rounds is finite (empirically a handful — the whole point of the paper).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Set

from repro.analysis.consistency import (
    cached_repetition_vector,
    repetition_vector,
)
from repro.exceptions import BudgetExceededError, DeadlockError, ReproError, SolverError
from repro.kperiodic.expansion import expansion_cache_for
from repro.kperiodic.optimality import (
    critical_qbar,
    optimality_test,
    update_periodicity,
)
from repro.kperiodic.schedule import KPeriodicSchedule
from repro.kperiodic.solver import (
    KPeriodicResult,
    PreparedMinPeriod,
    min_period_for_k,
    prepare_min_period,
    solve_prepared_min_period,
)
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.obs.slowlog import observe_solve as _observe_solve
from repro.obs.trace import span as _span
from repro.utils.rational import lcm_list
from repro.utils.timing import TimeBudget

# Pre-bound cells: one integer add per round / escalation / job.
_ROUNDS_TOTAL = _REGISTRY.counter("repro_kiter_rounds_total")
_ESCALATIONS = _REGISTRY.counter("repro_kiter_escalations_total")
_ESC_OPTIMALITY = _ESCALATIONS.labels(kind="optimality")
_ESC_INFEASIBLE = _ESCALATIONS.labels(kind="infeasible")
_ESC_FULL_Q = _ESCALATIONS.labels(kind="full-q-jump")
_SOLVER_JOBS = _REGISTRY.counter("repro_solver_jobs_total")
_SOLVER_SECONDS = _REGISTRY.histogram("repro_solver_seconds")


@dataclass
class KIterRound:
    """Trace of one K-Iter round (for reporting and the ablation benches).

    ``omega is None`` marks a round whose K admitted *no* K-periodic
    schedule (infeasible circuit — K was escalated along it).
    """

    K: Dict[str, int]
    omega: Optional[Fraction]
    critical_tasks: Set[str]
    passed: bool
    graph_nodes: int
    graph_arcs: int
    engine_iterations: int = 0


@dataclass
class KIterResult:
    """Final outcome of K-Iter.

    ``throughput`` is the *exact maximal* throughput of the graph
    (Theorem 4 certificate); ``None`` encodes an unbounded throughput
    (every duration on every critical cycle is 0).
    """

    period: Fraction
    K: Dict[str, int]
    critical_tasks: Set[str]
    rounds: List[KIterRound] = field(default_factory=list)
    schedule: Optional[KPeriodicSchedule] = None

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.period == 0:
            return None
        return Fraction(1, 1) / self.period

    @property
    def iteration_count(self) -> int:
        return len(self.rounds)

    @property
    def engine_iteration_count(self) -> int:
        """Total engine probes/jumps across all rounds (ablation metric)."""
        return sum(r.engine_iterations for r in self.rounds)


class KIterMachine:
    """Stepping form of Algorithm 1: one graph, advanced one round at a time.

    The class splits K-Iter's round loop at the engine-solve boundary so
    the caller chooses *how* each fixed-K instance is solved:
    :func:`throughput_kiter` solves every prepared round with a per-graph
    engine, while the fleet driver (:mod:`repro.kperiodic.fleet`) stacks
    the prepared constraint graphs of many machines and advances them all
    through one batched kernel pass per round.

    Protocol per round::

        prepared = machine.prepare()        # may raise SolverError/Budget
        try:
            result = <solve prepared.bi_graph somehow>
        except DeadlockError as exc:
            machine.absorb_deadlock(exc)    # escalates K (may re-raise)
        else:
            if machine.absorb(result):      # Theorem 4 certified?
                final = machine.finalize()

    Escalation, warm-start seeding, the infeasible-round full-q jump and
    budget/round caps are byte-for-byte the classic loop's semantics —
    :func:`throughput_kiter` is a thin driver over this machine.
    """

    def __init__(
        self,
        graph,
        *,
        max_rounds: int = 100_000,
        time_budget: Optional[float] = None,
        initial_k: Optional[Dict[str, int]] = None,
        update_policy: str = "lcm",
        warm_start: bool = True,
        pipeline: str = "direct",
        expansion_cache=None,
        repetition: Optional[Dict[str, int]] = None,
        warm_lambda: Optional[Fraction] = None,
    ) -> None:
        self.graph = graph
        self.max_rounds = max_rounds
        self.update_policy = update_policy
        self.warm_start = warm_start
        self.pipeline = pipeline
        self.q = (
            dict(repetition) if repetition is not None
            else cached_repetition_vector(graph)
        )
        self.K: Dict[str, int] = (
            dict(initial_k) if initial_k else {t: 1 for t in self.q}
        )
        self.budget = TimeBudget(time_budget, label="K-Iter")
        # The per-graph block cache makes round i+1 recompute only the
        # buffers whose endpoint K escalated; it is bound to the graph
        # object, so pool workers reusing a parsed graph share it too.
        # A DseSession passes its own cache instead: the session owns
        # the invalidation bookkeeping across graph edits, which the
        # weak-key per-object binding cannot express.
        if expansion_cache is not None and pipeline == "direct":
            self.cache = expansion_cache
        else:
            self.cache = (
                expansion_cache_for(graph) if pipeline == "direct" else None
            )
        self.rounds: List[KIterRound] = []
        self.final: Optional[KPeriodicResult] = None
        self._rounds_left = max_rounds
        self._infeasible_rounds = 0
        self._prev_lambda: Optional[Fraction] = None
        self._prev_lcm: Optional[int] = None
        self._lcm_k: Optional[int] = None
        # Cross-solve seed (DseSession): consumed by the *first*
        # prepared round only, in that round's expanded scale — the
        # caller guarantees it is the certified λ* of a previous solve
        # at the same initial K whose edits could not lower λ*. An
        # overshooting seed costs probes, never exactness (the engines
        # restart from the utilization bound on an uncertified start).
        self._initial_seed = (
            Fraction(warm_lambda) if warm_lambda is not None else None
        )

    @property
    def done(self) -> bool:
        return self.final is not None

    def prepare(self) -> PreparedMinPeriod:
        """Set up the next round's fixed-K constraint graph."""
        if self._rounds_left <= 0:
            raise SolverError(f"K-Iter exceeded {self.max_rounds} rounds")
        self._rounds_left -= 1
        self.budget.check()
        _ROUNDS_TOTAL.inc()
        self._lcm_k = lcm_list(self.K.values())
        seed = None
        if self._initial_seed is not None:
            if self.warm_start and self._prev_lambda is None:
                seed = self._initial_seed
            self._initial_seed = None  # first prepared round only
        if (
            seed is None
            and self.warm_start
            and self._prev_lambda is not None
            and self._prev_lcm is not None
            and self._lcm_k > self._prev_lcm
        ):
            # Deliberately NOT rescaled to the new lcm: Ω = λ*/lcm(K)
            # is non-increasing along K escalation (the K-periodic
            # schedule class only grows), so Ω_prev·lcm_new would
            # overshoot the new λ* and cost restart probes. The raw
            # previous λ* stays below the new λ* whenever lcm grew
            # (the guard above); it beats the utilization seed exactly
            # when the certified period exceeded the utilization bound
            # by more than the lcm growth factor.
            seed = self._prev_lambda
        return prepare_min_period(
            self.graph, self.K, repetition=self.q, warm_start=seed,
            pipeline=self.pipeline, expansion_cache=self.cache,
        )

    def absorb(self, result: KPeriodicResult) -> bool:
        """Record a solved round; ``True`` when Theorem 4 certified it."""
        if result.omega == 0:
            # No constraining circuit at all: unbounded throughput is
            # trivially optimal for any K.
            self.rounds.append(
                KIterRound(dict(self.K), result.omega, set(), True,
                           result.graph_nodes, result.graph_arcs,
                           result.engine_iterations)
            )
            self.final = result
            return True
        passed, qbar = optimality_test(self.q, self.K, result.critical_tasks)
        self.rounds.append(
            KIterRound(
                K=dict(self.K),
                omega=result.omega,
                critical_tasks=set(result.critical_tasks),
                passed=passed,
                graph_nodes=result.graph_nodes,
                graph_arcs=result.graph_arcs,
                engine_iterations=result.engine_iterations,
            )
        )
        if passed:
            self.final = result
            return True
        _ESC_OPTIMALITY.inc()
        self._prev_lambda = result.omega_expanded
        self._prev_lcm = self._lcm_k
        if self.update_policy == "lcm":
            self.K = update_periodicity(self.K, qbar)
        elif self.update_policy == "full-q":
            K = dict(self.K)
            for t in result.critical_tasks:
                K[t] = self.q[t]
            self.K = K
        else:
            raise SolverError(
                f"unknown update_policy {self.update_policy!r} "
                "(choose 'lcm' or 'full-q')"
            )
        return False

    def absorb_deadlock(self, exc: DeadlockError) -> None:
        """Escalate K along an infeasible circuit (may re-raise ``exc``)."""
        # The escalation jumps K along the infeasible circuit; the
        # previous certified λ* is from a much smaller expansion and
        # no longer a trustworthy seed.
        self._prev_lambda = self._prev_lcm = None
        self._infeasible_rounds += 1
        if self._infeasible_rounds >= 3 and any(
            self.K[t] < self.q[t] for t in self.q
        ):
            # Tightly-bounded graphs can hide dozens of distinct
            # infeasible circuits; discovering them one MCRP solve at
            # a time costs more than one full-q round. Record the
            # escalation and go straight to the exact expansion.
            self.rounds.append(
                KIterRound(
                    K=dict(self.K), omega=None,
                    critical_tasks=set(exc.critical_tasks or ()),
                    passed=False, graph_nodes=0, graph_arcs=0,
                )
            )
            self.K = dict(self.q)
            _ESC_FULL_Q.inc()
            return
        _ESC_INFEASIBLE.inc()
        self.K = _escalate_infeasible(
            self.graph, self.q, self.K, exc, self.rounds
        )

    def finalize(
        self,
        *,
        build_schedule: bool = False,
        engine: str = "ratio-iteration",
    ) -> KIterResult:
        """Package the certified result (requires a prior ``absorb`` → True)."""
        if self.final is None:
            raise SolverError("KIterMachine.finalize() before certification")
        return _finalize(
            self.graph, self.q, self.K, self.final, self.rounds,
            build_schedule, engine, self.pipeline, self.cache,
        )


def throughput_kiter(
    graph,
    *,
    engine: str = "ratio-iteration",
    build_schedule: bool = False,
    max_rounds: int = 100_000,
    time_budget: Optional[float] = None,
    initial_k: Optional[Dict[str, int]] = None,
    update_policy: str = "lcm",
    warm_start: bool = True,
    pipeline: str = "direct",
    expansion_cache=None,
    repetition: Optional[Dict[str, int]] = None,
    warm_lambda: Optional[Fraction] = None,
) -> KIterResult:
    """Exact maximum throughput of a consistent CSDFG via K-Iter.

    Parameters
    ----------
    graph:
        A consistent CSDFG (liveness is established as a side effect: a
        deadlocked graph raises :class:`~repro.exceptions.DeadlockError`
        at the first round).
    engine:
        Registered MCRP engine name passed through to the fixed-K
        solver (see :func:`repro.mcrp.registry.engine_names`; any of
        ``ratio-iteration``, ``hybrid``, ``howard``, ``lawler``,
        ``karp``, ``bellman`` out of the box).
    build_schedule:
        Extract the certified K-periodic schedule of the final round
        (costs one extra longest-path pass).
    max_rounds:
        Safety cap on rounds (the theoretical bound — the number of
        elementary circuits — is astronomically larger than any observed
        round count).
    time_budget:
        Optional wall-clock budget in seconds
        (:class:`~repro.exceptions.BudgetExceededError` on exhaustion) —
        used by the benchmark harness for timeout rows.
    initial_k:
        Starting periodicity vector (defaults to all-ones). Passing ``q``
        reproduces the classical exact-but-huge expansion in one round.
    update_policy:
        ``"lcm"`` — Algorithm 1's update ``K_t ← lcm(K_t, q̄_t)``
        (default); ``"full-q"`` — jump critical-circuit tasks straight to
        ``q_t`` (fewer rounds, bigger expansions; ablation A2 in
        DESIGN.md quantifies the trade).
    warm_start:
        Seed each round's engine with the previous round's certified
        ``λ*`` in addition to the utilization bound (the constraint
        graph grows along K escalation, so the previous optimum is a
        strong — and on the golden corpus always valid — starting
        point). Only applied when ``lcm(K)`` strictly grew, which keeps
        the seed below the new ``λ*``; a hypothetical overshoot would
        cost extra probes, never exactness (see
        :func:`repro.kperiodic.solver.min_period_for_k`).
    pipeline:
        Constraint-graph pipeline per round, passed through to
        :func:`~repro.kperiodic.solver.min_period_for_k`: ``"direct"``
        (default) compiles straight from ``(G, K)`` and reuses the
        graph's per-buffer block cache across rounds — a round whose
        escalation leaves a task's K unchanged recomputes nothing for
        that task — while ``"legacy"`` rebuilds the materialized
        expansion every round (the reference path).
    expansion_cache:
        Explicit :class:`~repro.kperiodic.expansion.ExpansionBlockCache`
        to use instead of the graph's weak-key-bound one — the
        :class:`repro.dse.DseSession` hook, whose edits create fresh
        graph objects but keep one selectively-invalidated cache.
    repetition:
        Pre-computed repetition vector ``q`` of ``graph`` (skips the
        exact rational propagation — another DseSession memo).
    warm_lambda:
        Certified ``λ*`` of a previous solve, seeding the *first*
        round's engine in that round's expanded scale (meaningful with
        ``initial_k`` set to that solve's certified K, so the scales
        match). Exactness never depends on it; an overshooting seed
        only costs restart probes.

    Examples
    --------
    >>> from repro.model import sdf
    >>> g = sdf({"A": 1, "B": 1},
    ...         [("A", "B", 1, 1, 0), ("B", "A", 1, 1, 1)])
    >>> throughput_kiter(g).period
    Fraction(2, 1)
    """
    machine = KIterMachine(
        graph, max_rounds=max_rounds, time_budget=time_budget,
        initial_k=initial_k, update_policy=update_policy,
        warm_start=warm_start, pipeline=pipeline,
        expansion_cache=expansion_cache, repetition=repetition,
        warm_lambda=warm_lambda,
    )
    while True:
        with _span("kiter.round", engine=engine,
                   round=len(machine.rounds)) as round_span:
            prepared = machine.prepare()
            round_span.attrs["lcm_K"] = machine._lcm_k
            try:
                result = solve_prepared_min_period(prepared, engine)
            except DeadlockError as exc:
                machine.absorb_deadlock(exc)
                continue
            certified = machine.absorb(result)
        if certified:
            return machine.finalize(build_schedule=build_schedule,
                                    engine=engine)


def _escalate_infeasible(
    graph,
    q: Dict[str, int],
    K: Dict[str, int],
    exc: DeadlockError,
    rounds: List[KIterRound],
) -> Dict[str, int]:
    """Raise K along a circuit that admits no K-periodic schedule.

    An infeasible circuit is "infinitely critical". The update jumps its
    tasks straight to full repetition (``K_t = q_t``): intermediate K
    values along a genuinely tight circuit almost always stay infeasible
    (measured on the bounded Table 2 graphs — dozens of wasted rounds),
    and at ``K_t = q_t`` the circuit's constraints coincide with the full
    expansion's, so a *still*-infeasible circuit over full-q tasks is a
    genuine deadlock — re-raised with its certificate. Exactness is
    unaffected: the final feasible round still certifies optimality via
    Theorem 4.
    """
    tasks = exc.critical_tasks
    if not tasks:
        raise exc  # no certificate to escalate along
    rounds.append(
        KIterRound(
            K=dict(K),
            omega=None,
            critical_tasks=set(tasks),
            passed=False,
            graph_nodes=0,
            graph_arcs=0,
        )
    )
    if all(K[t] == q[t] for t in tasks):
        raise exc
    updated = dict(K)
    for t in tasks:
        updated[t] = q[t]
    return updated


def _finalize(
    graph,
    q: Dict[str, int],
    K: Dict[str, int],
    result: KPeriodicResult,
    rounds: List[KIterRound],
    build_schedule: bool,
    engine: str,
    pipeline: str = "direct",
    cache=None,
) -> KIterResult:
    schedule = None
    if build_schedule and result.omega > 0:
        # The final round's blocks are all cache hits: the schedule
        # rebuild pays only assembly and the longest-path pass.
        final = min_period_for_k(
            graph, K, engine=engine, build_schedule=True, repetition=q,
            pipeline=pipeline, expansion_cache=cache,
        )
        schedule = final.schedule
    return KIterResult(
        period=result.omega,
        K=dict(K),
        critical_tasks=set(result.critical_tasks),
        rounds=rounds,
        schedule=schedule,
    )


def solve_kiter_payload(
    payload: Mapping[str, Any], *, graph=None
) -> Dict[str, Any]:
    """Pure, picklable K-Iter entry point: plain dict in, plain dict out.

    This is the function the :mod:`repro.service` process-pool workers
    execute — a module-level callable whose input and output are both
    JSON-able, so it crosses ``spawn``-context process boundaries and
    result caches unchanged. ``graph`` lets a worker inject an already
    deserialized :class:`~repro.model.graph.CsdfGraph` (per-worker graph
    reuse); otherwise the payload's ``"graph"`` dict is decoded.

    Payload keys (all optional except ``graph``): ``engine``,
    ``fallback_engines`` (tried in order on a
    :class:`~repro.exceptions.SolverError`, i.e. a certification
    failure of the primary engine), ``update_policy``, ``initial_k``,
    ``max_rounds``, ``time_budget``, ``warm_start``, ``pipeline``
    (``"direct"``/``"legacy"`` constraint-graph pipeline). With the
    default direct pipeline, a worker's injected ``graph`` carries its
    expansion block cache across jobs (see
    :func:`repro.kperiodic.expansion.expansion_cache_for`), so repeated
    jobs on one graph skip the useful-pair sweeps entirely.

    The outcome dict always carries ``status`` (``"OK"``,
    ``"DEADLOCK"``, ``"TIMEOUT"`` or ``"ERROR"``), ``engine_used``,
    ``fallback``, ``wall_time`` and ``worker_pid``; an ``"OK"`` outcome
    adds the exact ``period`` as a ``[numerator, denominator]`` pair,
    the certified ``K`` vector, ``rounds``, ``engine_iterations`` and
    the final ``critical_tasks``.
    """
    from repro.model.graph import CsdfGraph

    if graph is None:
        graph = CsdfGraph.from_dict(payload["graph"])
    engines: List[str] = [payload.get("engine", "ratio-iteration")]
    engines.extend(payload.get("fallback_engines", ()))
    started = time.perf_counter()
    update_policy = payload.get("update_policy", "lcm")
    pipeline = payload.get("pipeline", "direct")
    config_error = None
    if update_policy not in ("lcm", "full-q"):
        config_error = (f"unknown update_policy {update_policy!r} "
                        "(choose 'lcm' or 'full-q')")
    elif pipeline not in ("direct", "legacy"):
        config_error = (f"unknown pipeline {pipeline!r} "
                        "(choose 'direct' or 'legacy')")
    if config_error is not None:
        # Engine-independent config error: fail once, attributed to the
        # caller, instead of re-running the doomed solve per fallback.
        return {
            "status": "ERROR",
            "error": config_error,
            "engine_used": "", "fallback": False,
            "wall_time": 0.0, "worker_pid": os.getpid(),
        }

    def base(engine: str, position: int) -> Dict[str, Any]:
        return {
            "engine_used": engine,
            "fallback": position > 0,
            "wall_time": time.perf_counter() - started,
            "worker_pid": os.getpid(),
        }

    def attempt() -> Dict[str, Any]:
        last_error = "no engine produced a result"
        for position, engine in enumerate(engines):
            try:
                result = throughput_kiter(
                    graph,
                    engine=engine,
                    max_rounds=payload.get("max_rounds", 100_000),
                    time_budget=payload.get("time_budget"),
                    initial_k=payload.get("initial_k"),
                    update_policy=update_policy,
                    warm_start=payload.get("warm_start", True),
                    pipeline=pipeline,
                )
            except SolverError as exc:
                # Certification failure: fall through to the next engine.
                last_error = f"{engine}: {exc}"
                continue
            except DeadlockError as exc:
                return {"status": "DEADLOCK", "error": str(exc),
                        **base(engine, position)}
            except BudgetExceededError as exc:
                return {"status": "TIMEOUT", "error": str(exc),
                        **base(engine, position)}
            except ReproError as exc:
                return {"status": "ERROR", "error": str(exc),
                        **base(engine, position)}
            return {
                "status": "OK",
                "period": [result.period.numerator,
                           result.period.denominator],
                "K": dict(result.K),
                "rounds": result.iteration_count,
                "engine_iterations": result.engine_iteration_count,
                "critical_tasks": sorted(result.critical_tasks),
                **base(engine, position),
            }
        return {"status": "ERROR", "error": last_error,
                **base(engines[-1], len(engines) - 1)}

    # Adopt the trace context the facade put in the payload (if any) so
    # this span — and every kiter.round under it — lands in the job's
    # trace even across process/host boundaries.
    with _span("job.solve", trace=payload.get("trace"), profile=True,
               digest=str(payload.get("digest", ""))[:12],
               engine=engines[0]) as job_span:
        outcome = attempt()
        job_span.attrs["status"] = outcome["status"]
    _SOLVER_JOBS.labels(status=outcome["status"]).inc()
    _SOLVER_SECONDS.observe(outcome["wall_time"])
    _observe_solve(outcome["wall_time"], payload, outcome)
    return outcome


def throughput_via_full_expansion(graph, *, engine: str = "ratio-iteration"):
    """Exact throughput with ``K = q`` in one shot (test oracle).

    This is the classical "repetition-vector expansion" bound the paper
    uses as the known-exact extreme; its constraint graph has
    ``Σ_t q_t·ϕ(t)`` nodes, so only use it on small graphs.
    """
    q = repetition_vector(graph)
    return min_period_for_k(graph, q, engine=engine, build_schedule=False,
                            repetition=q)
