"""Karp's algorithm: exact maximum cycle *mean* (unit transit times).

Used by the HSDF expansion baseline, where every precedence arc has
``H = 1`` and the throughput bound is a maximum cycle mean rather than a
general ratio. Karp's theorem:

    ``λ* = max_v min_{0 ≤ k < n} (D_n(v) − D_k(v)) / (n − k)``

with ``D_k(v)`` the maximum cost of a ``k``-arc walk ending at ``v``
(``−∞`` when none exists), computed from a virtual source connected to all
nodes with zero cost.

The implementation is exact (integer/Fraction arithmetic) and recovers a
critical cycle from the ``D_n`` predecessor walk. Complexity Θ(nm).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro.exceptions import SolverError
from repro.mcrp.graph import BiValuedGraph, CycleResult


def max_cycle_mean(graph: BiValuedGraph) -> CycleResult:
    """Maximum mean-cost cycle of ``graph`` (transit values are ignored).

    Returns ``ratio=None`` for acyclic graphs. The certificate cycle's
    *mean* equals the returned ratio (``Σ L / cycle length``).
    """
    n = graph.node_count
    if n == 0 or graph.arc_count == 0:
        return CycleResult(ratio=None)
    out_arcs = [graph.out_arcs(v) for v in range(n)]
    costs = graph.arc_cost
    NEG = None  # sentinel for -infinity

    # D[k][v]: best k-arc walk cost ending at v; pred[k][v]: arc used.
    prev: List[Optional[Fraction]] = [Fraction(0)] * n
    table: List[List[Optional[Fraction]]] = [prev]
    preds: List[List[Optional[int]]] = [[None] * n]
    for _ in range(n):
        cur: List[Optional[Fraction]] = [NEG] * n
        pred_row: List[Optional[int]] = [None] * n
        for u in range(n):
            du = prev[u]
            if du is NEG:
                continue
            for arc in out_arcs[u]:
                v = graph.arc_dst[arc]
                cand = du + costs[arc]
                if cur[v] is NEG or cand > cur[v]:
                    cur[v] = cand
                    pred_row[v] = arc
        table.append(cur)
        preds.append(pred_row)
        prev = cur

    best_ratio: Optional[Fraction] = None
    best_node: Optional[int] = None
    d_n = table[n]
    for v in range(n):
        if d_n[v] is NEG:
            continue
        worst: Optional[Fraction] = None
        for k in range(n):
            if table[k][v] is NEG:
                continue
            mean = Fraction(d_n[v] - table[k][v], n - k)
            if worst is None or mean < worst:
                worst = mean
        if worst is not None and (best_ratio is None or worst > best_ratio):
            best_ratio = worst
            best_node = v
    if best_ratio is None:
        return CycleResult(ratio=None)

    cycle_arcs = _recover_cycle(graph, preds, best_node, best_ratio)
    return CycleResult(
        ratio=best_ratio,
        cycle_arcs=cycle_arcs,
        cycle_nodes=[graph.arc_src[a] for a in cycle_arcs],
        iterations=n,
    )


def _recover_cycle(
    graph: BiValuedGraph,
    preds: List[List[Optional[int]]],
    end_node: int,
    target_mean: Fraction,
) -> List[int]:
    """Extract a cycle of mean ``target_mean`` from the critical n-arc walk.

    The walk has n arcs over n nodes, so it contains cycles; Karp's
    argument guarantees *some* cycle on it is critical. Non-critical
    cycles found along the way are contracted out of the walk and the scan
    continues on the shortened walk.
    """
    n = graph.node_count
    walk_arcs: List[int] = []
    node = end_node
    for k in range(n, 0, -1):
        arc = preds[k][node]
        assert arc is not None
        walk_arcs.append(arc)
        node = graph.arc_src[arc]
    walk_arcs.reverse()  # forward order, starting from the walk's origin

    # stack of (node, incoming arc) pairs; position index per node.
    position = {node: 0}
    stack_nodes: List[int] = [node]
    stack_arcs: List[Optional[int]] = [None]
    for arc in walk_arcs:
        cursor = graph.arc_dst[arc]
        if cursor in position:
            start = position[cursor]
            segment = [a for a in stack_arcs[start + 1:] if a is not None]
            segment.append(arc)
            total = sum(graph.arc_cost[a] for a in segment)
            if Fraction(total, len(segment)) == target_mean:
                return segment
            # Contract the non-critical cycle and keep scanning.
            for dropped in stack_nodes[start + 1:]:
                del position[dropped]
            del stack_nodes[start + 1:]
            del stack_arcs[start + 1:]
        else:
            position[cursor] = len(stack_nodes)
            stack_nodes.append(cursor)
            stack_arcs.append(arc)
    raise SolverError(  # pragma: no cover - contradicts Karp's theorem
        "critical walk contained no cycle of critical mean"
    )
