"""Karp's algorithm: exact maximum cycle mean, and a ratio engine on top.

Karp's theorem, for arc weights ``w`` over a graph with a virtual source
connected to all nodes at cost 0:

    ``μ* = max_v min_{0 ≤ k < n} (D_n(v) − D_k(v)) / (n − k)``

with ``D_k(v)`` the maximum ``w``-value of a ``k``-arc walk ending at
``v`` (``−∞`` when none exists). The implementation is exact
(integer/Fraction arithmetic), recovers a critical cycle from the
``D_n`` predecessor walk, and runs in Θ(nm).

Two consumers share the core:

* :func:`max_cycle_mean` — the classical maximum cycle *mean* (unit
  transit times), used by the HSDF expansion baseline;
* the ``karp`` registry engine :func:`max_cycle_ratio_karp` — the
  general bi-valued MCRP solved by ascending ratio iteration whose
  positive-cycle oracle is a Karp table over the parametric weights
  ``b·L − a·H`` (the maximum cycle mean is positive iff some cycle is
  positive, and the recovered critical-mean cycle *is* such a cycle).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.registry import register_engine


def max_cycle_mean(graph: BiValuedGraph) -> CycleResult:
    """Maximum mean-cost cycle of ``graph`` (transit values are ignored).

    Returns ``ratio=None`` for acyclic graphs. The certificate cycle's
    *mean* equals the returned ratio (``Σ L / cycle length``).
    """
    n = graph.node_count
    if n == 0 or graph.arc_count == 0:
        return CycleResult(ratio=None)
    compiled = graph.compile()
    mean, cycle_arcs = _best_mean_cycle(
        n, compiled.out_arcs, compiled.src, compiled.dst, graph.arc_cost
    )
    if mean is None:
        return CycleResult(ratio=None)
    return CycleResult(
        ratio=mean,
        cycle_arcs=cycle_arcs,
        cycle_nodes=[graph.arc_src[a] for a in cycle_arcs],
        iterations=n,
    )


def _best_mean_cycle(
    n: int,
    out_arcs: Sequence[Sequence[int]],
    arc_src: Sequence[int],
    arc_dst: Sequence[int],
    weights: Sequence,
) -> Tuple[Optional[Fraction], Optional[List[int]]]:
    """Karp table over arbitrary (int or Fraction) arc ``weights``.

    Returns ``(best mean, critical cycle arcs)`` or ``(None, None)``
    when the graph is acyclic.
    """
    NEG = None  # sentinel for -infinity

    # D[k][v]: best k-arc walk value ending at v; pred[k][v]: arc used.
    prev: List = [0] * n
    table: List[List] = [prev]
    preds: List[List[Optional[int]]] = [[None] * n]
    for _ in range(n):
        cur: List = [NEG] * n
        pred_row: List[Optional[int]] = [None] * n
        for u in range(n):
            du = prev[u]
            if du is NEG:
                continue
            for arc in out_arcs[u]:
                v = arc_dst[arc]
                cand = du + weights[arc]
                if cur[v] is NEG or cand > cur[v]:
                    cur[v] = cand
                    pred_row[v] = arc
        table.append(cur)
        preds.append(pred_row)
        prev = cur

    best_mean: Optional[Fraction] = None
    best_node: Optional[int] = None
    d_n = table[n]
    for v in range(n):
        if d_n[v] is NEG:
            continue
        worst: Optional[Fraction] = None
        for k in range(n):
            if table[k][v] is NEG:
                continue
            mean = Fraction(d_n[v] - table[k][v], n - k)
            if worst is None or mean < worst:
                worst = mean
        if worst is not None and (best_mean is None or worst > best_mean):
            best_mean = worst
            best_node = v
    if best_mean is None:
        return None, None
    cycle = _recover_cycle(n, preds, arc_src, arc_dst, weights,
                           best_node, best_mean)
    return best_mean, cycle


def _recover_cycle(
    n: int,
    preds: List[List[Optional[int]]],
    arc_src: Sequence[int],
    arc_dst: Sequence[int],
    weights: Sequence,
    end_node: int,
    target_mean: Fraction,
) -> List[int]:
    """Extract a cycle of mean ``target_mean`` from the critical n-arc walk.

    The walk has n arcs over n nodes, so it contains cycles; Karp's
    argument guarantees *some* cycle on it is critical. Non-critical
    cycles found along the way are contracted out of the walk and the scan
    continues on the shortened walk.
    """
    walk_arcs: List[int] = []
    node = end_node
    for k in range(n, 0, -1):
        arc = preds[k][node]
        assert arc is not None
        walk_arcs.append(arc)
        node = arc_src[arc]
    walk_arcs.reverse()  # forward order, starting from the walk's origin

    # stack of (node, incoming arc) pairs; position index per node.
    position = {node: 0}
    stack_nodes: List[int] = [node]
    stack_arcs: List[Optional[int]] = [None]
    for arc in walk_arcs:
        cursor = arc_dst[arc]
        if cursor in position:
            start = position[cursor]
            segment = [a for a in stack_arcs[start + 1:] if a is not None]
            segment.append(arc)
            total = sum(weights[a] for a in segment)
            if Fraction(total, len(segment)) == target_mean:
                return segment
            # Contract the non-critical cycle and keep scanning.
            for dropped in stack_nodes[start + 1:]:
                del position[dropped]
            del stack_nodes[start + 1:]
            del stack_arcs[start + 1:]
        else:
            position[cursor] = len(stack_nodes)
            stack_nodes.append(cursor)
            stack_arcs.append(arc)
    raise SolverError(  # pragma: no cover - contradicts Karp's theorem
        "critical walk contained no cycle of critical mean"
    )


# ----------------------------------------------------------------------
def _karp_oracle(scaled, lam_num: int, lam_den: int) -> Optional[List[int]]:
    """Positive-cycle oracle backed by a Karp table.

    A cycle with positive parametric weight exists iff the maximum cycle
    mean of those weights is positive, and the recovered critical-mean
    cycle realizes it.
    """
    compiled = scaled.compiled
    weights = compiled.parametric_weights(lam_num, lam_den)
    mean, cycle = _best_mean_cycle(
        compiled.node_count, compiled.out_arcs,
        compiled.src, compiled.dst, weights,
    )
    if mean is None or mean <= 0:
        return None
    return cycle


@register_engine(
    "karp",
    supports_lower_bound=True,
    quadratic=True,
    summary="ascending iteration on a Karp-table oracle "
            "(Θ(nm) per probe; cycle-mean core shared with the HSDF "
            "baseline)",
)
def max_cycle_ratio_karp(
    graph: BiValuedGraph,
    *,
    lower_bound: Optional[Fraction] = None,
) -> CycleResult:
    """Exact maximum cycle ratio with Karp tables as the oracle.

    Same contract as :func:`repro.mcrp.max_cycle_ratio` — exact ``λ*``,
    critical-circuit certificate, ``DeadlockError`` on infeasible
    cycles. Dense and allocation-heavy (Θ(nm) per probe), so it is the
    cross-check engine for small and medium graphs, not the production
    path.
    """
    from repro.mcrp.ratio_iteration import max_cycle_ratio

    return max_cycle_ratio(graph, lower_bound=lower_bound,
                           oracle=_karp_oracle)
