"""Karp's algorithm: exact maximum cycle mean, and ratio engines on top.

Karp's theorem, for arc weights ``w`` over a graph with a virtual source
connected to all nodes at cost 0:

    ``μ* = max_v min_{0 ≤ k < n} (D_n(v) − D_k(v)) / (n − k)``

with ``D_k(v)`` the maximum ``w``-value of a ``k``-arc walk ending at
``v`` (``−∞`` when none exists). The implementation is exact
(integer/Fraction arithmetic), recovers a critical cycle from the
``D_n`` predecessor walk, and runs in Θ(nm).

Two table implementations share the contract:

* a **numpy-vectorized table** (:func:`_best_mean_cycle_numpy`) over the
  compiled core's destination-sorted arc arrays — one
  ``maximum.reduceat`` per table row, int64 throughout, engaged whenever
  the weights provably fit the 64-bit fast path. The Karp *selection*
  (the max–min over table entries) stays exact by comparing the
  candidate means ``num/den`` with integer cross-multiplication, never
  floats, so the vectorized table returns bit-identical ``Fraction``
  results;
* the **pure-Python reference table** (:func:`_best_mean_cycle_python`),
  which also serves as the arbitrary-precision fallback when the scaled
  weights overflow the int64 gate (or numpy is absent).

Three consumers share the core:

* :func:`max_cycle_mean` — the classical maximum cycle *mean* (unit
  transit times), used by the HSDF expansion baseline; it runs the
  table on the compiled integer-scaled costs, so it vectorizes too;
* the ``karp`` registry engine :func:`max_cycle_ratio_karp` — the
  general bi-valued MCRP solved by ascending ratio iteration whose
  positive-cycle oracle is a Karp table over the parametric weights
  ``b·L − a·H`` (the maximum cycle mean is positive iff some cycle is
  positive, and the recovered critical-mean cycle *is* such a cycle);
* the ``karp-python`` registry engine — the same iteration pinned to
  the pure-Python table; the reference row vectorization claims are
  benchmarked against (`benchmarks/bench_mcrp_engines.py`).

Examples
--------
>>> from repro.mcrp.graph import BiValuedGraph
>>> g = BiValuedGraph(3)
>>> _ = g.add_arc(0, 1, 4, 1)
>>> _ = g.add_arc(1, 0, 2, 1)   # cycle 0↔1: mean (4+2)/2 = 3
>>> _ = g.add_arc(2, 2, 1, 1)   # self-loop at 2: mean 1
>>> max_cycle_mean(g).ratio
Fraction(3, 1)
>>> max_cycle_ratio_karp(g).ratio     # ratio = mean here (unit transits)
Fraction(3, 1)
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

try:  # optional vectorized table
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI
    _np = None

from repro.exceptions import SolverError
from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.registry import register_engine

#: Below this node count the numpy table's array set-up costs more than
#: the pure-Python loop it replaces.
_MIN_VECTOR_NODES = 64
#: Hard cap on the vectorized table footprint (D + predecessor tables,
#: int64): beyond it the pure-Python table runs instead of thrashing.
_MAX_TABLE_BYTES = 512 * 1024 * 1024
#: −∞ sentinel of the int64 table; real D values stay within ±2^61 by
#: the weight gate, so the sentinel is unambiguous and ``NEG + w`` can
#: never wrap around int64.
_NEG = -(1 << 62)
_NEG_HALF = -(1 << 61)


def max_cycle_mean(graph: BiValuedGraph) -> CycleResult:
    """Maximum mean-cost cycle of ``graph`` (transit values are ignored).

    Returns ``ratio=None`` for acyclic graphs. The certificate cycle's
    *mean* equals the returned ratio (``Σ L / cycle length``).

    The table runs on the compiled integer-scaled costs (vectorized
    when the int64 gate passes), and the mean is mapped back through
    the compile scale, so fractional costs stay exact.
    """
    n = graph.node_count
    if n == 0 or graph.arc_count == 0:
        return CycleResult(ratio=None)
    compiled = graph.compile()
    mean, cycle_arcs = _best_mean_cycle(
        compiled, compiled.cost, compiled.max_abs_cost
    )
    if mean is None:
        return CycleResult(ratio=None)
    return CycleResult(
        ratio=mean / compiled.scale,
        cycle_arcs=cycle_arcs,
        cycle_nodes=[graph.arc_src[a] for a in cycle_arcs],
        iterations=n,
    )


def _vector_gate(compiled, weight_bound: int) -> bool:
    """True when the int64 numpy table is provably safe and worthwhile.

    ``weight_bound`` is an upper bound on ``|w|`` per arc. The gate
    guarantees (a) every table entry — a ≤n-arc walk sum — and the
    sentinel arithmetic stay inside int64, and (b) the exact selection's
    cross products ``|D_n − D_k| · (n − k) ≤ 2·n²·max|w|`` do too.
    """
    n = compiled.node_count
    if _np is None or n < _MIN_VECTOR_NODES or compiled.arc_count == 0:
        return False
    if (n + 1) * n * 16 > _MAX_TABLE_BYTES:
        return False
    bound = max(1, weight_bound)
    return 2 * n * n * bound < (1 << 62) and compiled.ensure_numpy()


def _best_mean_cycle(
    compiled,
    weights: Sequence[int],
    weight_bound: int,
) -> Tuple[Optional[Fraction], Optional[List[int]]]:
    """Karp table over integer arc ``weights``, dispatching on the gate.

    Returns ``(best mean, critical cycle arcs)`` or ``(None, None)``
    when the graph is acyclic. Both table implementations are exact;
    the dispatch can only affect speed.
    """
    if _vector_gate(compiled, weight_bound):
        return _best_mean_cycle_numpy(compiled, weights)
    return _best_mean_cycle_python(compiled, weights)


# ----------------------------------------------------------------------
# pure-Python reference table
# ----------------------------------------------------------------------
def _best_mean_cycle_python(
    compiled,
    weights: Sequence,
) -> Tuple[Optional[Fraction], Optional[List[int]]]:
    """The reference Θ(nm) Karp table (arbitrary-precision integers)."""
    n = compiled.node_count
    out_arcs = compiled.out_arcs
    arc_dst = compiled.dst
    NEG = None  # sentinel for -infinity

    # D[k][v]: best k-arc walk value ending at v; pred[k][v]: arc used.
    prev: List = [0] * n
    table: List[List] = [prev]
    preds: List[List[Optional[int]]] = [[None] * n]
    for _ in range(n):
        cur: List = [NEG] * n
        pred_row: List[Optional[int]] = [None] * n
        for u in range(n):
            du = prev[u]
            if du is NEG:
                continue
            for arc in out_arcs[u]:
                v = arc_dst[arc]
                cand = du + weights[arc]
                if cur[v] is NEG or cand > cur[v]:
                    cur[v] = cand
                    pred_row[v] = arc
        table.append(cur)
        preds.append(pred_row)
        prev = cur

    best_mean: Optional[Fraction] = None
    best_node: Optional[int] = None
    d_n = table[n]
    for v in range(n):
        if d_n[v] is NEG:
            continue
        worst: Optional[Fraction] = None
        for k in range(n):
            if table[k][v] is NEG:
                continue
            mean = Fraction(d_n[v] - table[k][v], n - k)
            if worst is None or mean < worst:
                worst = mean
        if worst is not None and (best_mean is None or worst > best_mean):
            best_mean = worst
            best_node = v
    if best_mean is None:
        return None, None
    cycle = _recover_cycle(
        n, preds, compiled.src, compiled.dst, weights, best_node, best_mean
    )
    return best_mean, cycle


# ----------------------------------------------------------------------
# vectorized table
# ----------------------------------------------------------------------
def _best_mean_cycle_numpy(
    compiled,
    weights: Sequence[int],
) -> Tuple[Optional[Fraction], Optional[List[int]]]:
    """The Karp table as n ``maximum.reduceat`` sweeps over int64 arrays.

    Each row update reduces the candidate values ``D_{k-1}(src) + w``
    over the destination-sorted arc segments the compiled core
    precomputes; unreachable entries carry the ``_NEG`` sentinel. The
    max–min selection compares candidate means exactly by integer
    cross-multiplication (denominators ``n − k`` are positive), so the
    result is the same ``Fraction`` the reference table returns —
    the caller's gate has already proven every product fits int64.
    """
    n = compiled.node_count
    m = compiled.arc_count
    w = _np.asarray(weights, dtype=_np.int64)
    w_s = w[compiled.dst_order]
    src_s = compiled.src_sorted
    arc_ids = compiled.arc_ids_sorted
    dst_unique = compiled.dst_unique
    seg_starts = compiled.seg_starts
    seg_sizes = compiled.seg_sizes
    positions = _np.arange(m, dtype=_np.int64)

    table = _np.full((n + 1, n), _NEG, dtype=_np.int64)
    preds = _np.full((n + 1, n), -1, dtype=_np.int64)
    table[0] = 0
    prev = table[0]
    for k in range(1, n + 1):
        du = prev[src_s]
        cand = _np.where(du <= _NEG_HALF, _NEG, du + w_s)
        seg_best = _np.maximum.reduceat(cand, seg_starts)
        valid = seg_best > _NEG_HALF
        if not valid.any():
            break  # every walk died out: all later rows stay -inf
        touched = dst_unique[valid]
        row = table[k]
        row[touched] = seg_best[valid]
        # predecessor: the first arc achieving each segment's max
        best_rep = _np.repeat(seg_best, seg_sizes)
        hit = _np.where(cand == best_rep, positions, m)
        first = _np.minimum.reduceat(hit, seg_starts)
        preds[k][touched] = arc_ids[first[valid]]
        prev = row

    d_n = table[n]
    alive = d_n > _NEG_HALF
    if not alive.any():
        return None, None

    # Per node v: min over k of (D_n(v) − D_k(v)) / (n − k), exactly.
    # Row k = 0 is finite everywhere, so every alive v has a candidate.
    worst_num = d_n.copy()
    worst_den = _np.full(n, n, dtype=_np.int64)
    for k in range(1, n):
        row = table[k]
        finite = row > _NEG_HALF
        if not finite.any():
            break  # rows only ever lose reachability as k grows
        num = _np.where(finite, d_n - row, 0)
        den = n - k
        better = finite & (num * worst_den < worst_num * den)
        worst_num = _np.where(better, num, worst_num)
        worst_den = _np.where(better, den, worst_den)

    # max over v (exact cross-multiplied comparison, plain ints)
    best_node = -1
    best_num, best_den = 0, 1
    for v in _np.nonzero(alive)[0]:
        num, den = int(worst_num[v]), int(worst_den[v])
        if best_node < 0 or num * best_den > best_num * den:
            best_num, best_den, best_node = num, den, int(v)
    best_mean = Fraction(best_num, best_den)
    cycle = _recover_cycle(
        n, preds, compiled.src, compiled.dst, weights, best_node, best_mean
    )
    return best_mean, cycle


def _recover_cycle(
    n: int,
    preds,
    arc_src: Sequence[int],
    arc_dst: Sequence[int],
    weights: Sequence,
    end_node: int,
    target_mean: Fraction,
) -> List[int]:
    """Extract a cycle of mean ``target_mean`` from the critical n-arc walk.

    The walk has n arcs over n nodes, so it contains cycles; Karp's
    argument guarantees *some* cycle on it is critical. Non-critical
    cycles found along the way are contracted out of the walk and the scan
    continues on the shortened walk. ``preds`` is indexed ``preds[k][v]``
    and may be the reference table (``None`` = no arc) or the numpy
    table (``-1`` = no arc).
    """
    walk_arcs: List[int] = []
    node = end_node
    for k in range(n, 0, -1):
        raw = preds[k][node]
        arc = -1 if raw is None else int(raw)
        assert arc >= 0
        walk_arcs.append(arc)
        node = arc_src[arc]
    walk_arcs.reverse()  # forward order, starting from the walk's origin

    # stack of (node, incoming arc) pairs; position index per node.
    position = {node: 0}
    stack_nodes: List[int] = [node]
    stack_arcs: List[Optional[int]] = [None]
    for arc in walk_arcs:
        cursor = arc_dst[arc]
        if cursor in position:
            start = position[cursor]
            segment = [a for a in stack_arcs[start + 1:] if a is not None]
            segment.append(arc)
            total = sum(weights[a] for a in segment)
            if Fraction(total, len(segment)) == target_mean:
                return segment
            # Contract the non-critical cycle and keep scanning.
            for dropped in stack_nodes[start + 1:]:
                del position[dropped]
            del stack_nodes[start + 1:]
            del stack_arcs[start + 1:]
        else:
            position[cursor] = len(stack_nodes)
            stack_nodes.append(cursor)
            stack_arcs.append(arc)
    raise SolverError(  # pragma: no cover - contradicts Karp's theorem
        "critical walk contained no cycle of critical mean"
    )


# ----------------------------------------------------------------------
def _karp_oracle(scaled, lam_num: int, lam_den: int) -> Optional[List[int]]:
    """Positive-cycle oracle backed by the dispatching Karp table.

    A cycle with positive parametric weight exists iff the maximum cycle
    mean of those weights is positive, and the recovered critical-mean
    cycle realizes it.
    """
    compiled = scaled.compiled
    weights = compiled.parametric_weights(lam_num, lam_den)
    mean, cycle = _best_mean_cycle(
        compiled, weights,
        compiled.parametric_weight_bound(lam_num, lam_den),
    )
    if mean is None or mean <= 0:
        return None
    return cycle


def _karp_python_oracle(
    scaled, lam_num: int, lam_den: int
) -> Optional[List[int]]:
    """The same oracle pinned to the pure-Python reference table."""
    compiled = scaled.compiled
    weights = compiled.parametric_weights(lam_num, lam_den)
    mean, cycle = _best_mean_cycle_python(compiled, weights)
    if mean is None or mean <= 0:
        return None
    return cycle


@register_engine(
    "karp",
    supports_lower_bound=True,
    quadratic=True,
    vectorized=True,
    batched=True,
    summary="ascending iteration on a vectorized Karp-table oracle "
            "(Θ(nm) per probe as one reduceat sweep per table row; "
            "cycle-mean core shared with the HSDF baseline)",
)
def max_cycle_ratio_karp(
    graph: BiValuedGraph,
    *,
    lower_bound: Optional[Fraction] = None,
) -> CycleResult:
    """Exact maximum cycle ratio with Karp tables as the oracle.

    Same contract as :func:`repro.mcrp.max_cycle_ratio` — exact ``λ*``,
    critical-circuit certificate, ``DeadlockError`` on infeasible
    cycles. The table is numpy-vectorized when the scaled weights fit
    the int64 gate (and falls back to the arbitrary-precision reference
    otherwise), but each probe still materializes a Θ(n²) table, so the
    benchmark drivers keep it off instances where the linear-memory
    engines win.
    """
    from repro.mcrp.ratio_iteration import max_cycle_ratio

    return max_cycle_ratio(graph, lower_bound=lower_bound,
                           oracle=_karp_oracle)


@register_engine(
    "karp-python",
    supports_lower_bound=True,
    quadratic=True,
    summary="ascending iteration on the pure-Python Karp table "
            "(reference row for the vectorized `karp` engine)",
)
def max_cycle_ratio_karp_python(
    graph: BiValuedGraph,
    *,
    lower_bound: Optional[Fraction] = None,
) -> CycleResult:
    """Exact maximum cycle ratio over the un-vectorized Karp table.

    Bit-identical results to the ``karp`` engine by construction — the
    two share everything but the table implementation — which makes
    this the ablation baseline for the vectorization claim and the
    fallback of record on platforms without numpy.
    """
    from repro.mcrp.ratio_iteration import max_cycle_ratio

    return max_cycle_ratio(graph, lower_bound=lower_bound,
                           oracle=_karp_python_oracle)
