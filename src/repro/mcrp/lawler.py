"""Lawler's binary search for the maximum cycle ratio (reference engine).

Kept primarily as an *independent implementation* to cross-check the
ascending ratio iteration in the test suite: a disagreement between the
two engines on any input is a bug by construction.

The search maintains exact rational bounds. Whenever the positive-cycle
oracle fires at the midpoint, the found cycle's exact ratio tightens the
lower bound (a jump, not just `lo = mid`), so termination follows the same
finite-cycle-ratio argument as the ascending engine; the upper bound comes
from bisection. The search stops when the interval is narrower than the
minimal gap ``1/B²`` between distinct cycle ratios (``B`` bounds cycle
transit numerators), then snaps to the certified lower bound.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.exceptions import DeadlockError, SolverError
from repro.mcrp.bellman import (
    ScaledGraph,
    certify_zero_ratio,
    find_positive_cycle,
)
from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.registry import register_engine


@register_engine(
    "lawler",
    summary="rational binary search with jump-tightened lower bounds "
            "(independent cross-check engine)",
)
def max_cycle_ratio_lawler(graph: BiValuedGraph) -> CycleResult:
    """Exact maximum cycle ratio by rational binary search.

    Same contract as :func:`repro.mcrp.max_cycle_ratio` (including
    :class:`DeadlockError` on infeasible constraint cycles).
    """
    if any(c < 0 for c in graph.arc_cost):
        raise SolverError("Lawler search requires non-negative arc costs")
    scaled = ScaledGraph(graph)
    if graph.node_count == 0 or graph.arc_count == 0:
        return CycleResult(ratio=None)

    transit_bound = sum(abs(t) for t in scaled.transit)
    cost_bound = sum(scaled.cost)
    if transit_bound == 0:
        # No cycle can have positive transit: any positive-cost cycle (or
        # in fact any cost at all on a cycle) is a deadlock; otherwise the
        # graph imposes no period bound.
        offender = find_positive_cycle(scaled, 0, 1)
        if offender is not None:
            raise DeadlockError(
                "constraint cycle with positive cost and zero transit: "
                "no feasible period exists (deadlock)",
                cycle_nodes=[graph.arc_src[a] for a in offender],
            )
        return CycleResult(ratio=None)

    lo = Fraction(0)
    lo_cycle = None
    hi = Fraction(cost_bound + 1, 1)  # strictly above any cycle ratio
    gap = Fraction(1, transit_bound * transit_bound)
    iterations = 0
    # Distinct cycle ratios differ by AT LEAST gap, so the interval
    # must shrink strictly BELOW gap before it can hold only one
    # candidate — exiting at hi - lo == gap can still leave two (e.g. a
    # single cost-1/transit-1 self-loop: lo=0, hi=1, gap=1 holds both
    # 0 and λ* = 1).
    while hi - lo >= gap:
        iterations += 1
        mid = (lo + hi) / 2
        cycle = find_positive_cycle(scaled, mid.numerator, mid.denominator)
        if cycle is None:
            hi = mid
            continue
        cost, transit = scaled.cycle_ratio(cycle)
        if transit <= 0:
            raise DeadlockError(
                "constraint cycle with positive cost and non-positive "
                "transit: no feasible period exists (deadlock)",
                cycle_nodes=[graph.arc_src[a] for a in cycle],
            )
        ratio = Fraction(cost, transit)
        if ratio <= lo:  # pragma: no cover - bisection safety
            raise SolverError("cycle ratio did not improve the lower bound")
        lo = ratio
        lo_cycle = cycle

    # λ* lies in [lo, hi), hi - lo < gap, and distinct ratios differ by
    # ≥ gap, so λ* = lo provided lo is a genuine cycle ratio; certify
    # there is nothing above.
    if find_positive_cycle(scaled, lo.numerator, lo.denominator) is not None:
        raise SolverError(  # pragma: no cover - contradicts gap argument
            "positive cycle above the converged lower bound"
        )
    if lo_cycle is None:
        if lo != 0:  # pragma: no cover - lo only moves via cycles
            raise SolverError("lower bound moved without a certificate")
        cert = certify_zero_ratio(scaled)
        if cert is None:
            return CycleResult(ratio=None, iterations=iterations)
        return CycleResult(
            ratio=Fraction(0),
            cycle_arcs=list(cert),
            cycle_nodes=[graph.arc_src[a] for a in cert],
            iterations=iterations,
        )
    return CycleResult(
        ratio=lo,
        cycle_arcs=list(lo_cycle),
        cycle_nodes=[graph.arc_src[a] for a in lo_cycle],
        iterations=iterations,
    )


