"""The two-stage ``hybrid`` engine: float prefilter, exact certify.

The production fast path of the compiled core:

1. **Prefilter** — float Howard policy iteration, fully vectorized over
   the compiled graph's numpy shadow weights (per-source policy
   improvement is one ``maximum.reduceat`` over the CSR-sorted arcs),
   locates a candidate critical circuit; the circuit's *exact* rational
   ratio ``λ̂`` is computed in scaled integers, so it is a certified
   lower bound on ``λ*`` by construction.
2. **Certify** — one exact positive-cycle probe at ``λ̂``. When the
   probe is empty, ``λ* = λ̂`` and the candidate circuit is critical:
   done after a *single* exact sweep (the common case — float Howard
   lands on the optimum). When the probe finds a positive cycle, its
   exact ratio re-seeds the ascending exact iteration, which refines to
   ``λ*`` with full certificates.

On graphs too small for the array set-up to pay (or without numpy) the
engine skips the prefilter and is plain exact ratio iteration — the
two-stage pipeline engages exactly where it wins.

Soundness of the single-probe shortcut: at ``λ̂ > 0``, any infeasible
(deadlock) cycle — positive cost with ``H ≤ 0``, or zero cost with
``H < 0`` — still has strictly positive parametric weight, so an empty
probe also proves feasibility. At ``λ̂ = 0`` that argument fails
(zero-cost negative-transit cycles are invisible), so the engine
delegates to the full exact pipeline, whose λ=0 certificate logic
handles it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI
    _np = None

from repro.exceptions import DeadlockError, SolverError
from repro.mcrp.bellman import ScaledGraph, find_positive_cycle
from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.howard import policy_cycles, policy_values
from repro.mcrp.ratio_iteration import max_cycle_ratio
from repro.mcrp.registry import register_engine

_EPS = 1e-9
#: Below this node count the prefilter's array set-up costs more than
#: the handful of pure-python oracle probes it would save.
_MIN_PREFILTER_NODES = 64


@register_engine(
    "hybrid",
    float_prefilter=True,
    supports_lower_bound=True,
    vectorized=True,
    batched=True,
    summary="vectorized float Howard prefilter + single-probe exact "
            "certification (compiled-core fast path)",
)
def max_cycle_ratio_hybrid(
    graph: BiValuedGraph,
    *,
    lower_bound: Optional[Fraction] = None,
    max_policy_iterations: int = 200,
) -> CycleResult:
    """Exact maximum cycle ratio via the float-prefilter/exact-certify
    pipeline.

    Same contract as :func:`repro.mcrp.max_cycle_ratio`: exact ``λ*``,
    a critical-circuit certificate, ``ratio=None`` on acyclic graphs and
    :class:`~repro.exceptions.DeadlockError` on infeasible constraint
    cycles. ``lower_bound`` must be a certified lower bound; it is
    merged with the prefilter's own candidate.
    """
    if graph.node_count == 0 or graph.arc_count == 0:
        return CycleResult(ratio=None)
    compiled = graph.compile()
    if compiled.has_negative_cost:
        raise SolverError("hybrid engine requires non-negative arc costs")
    if (
        _np is None
        or compiled.node_count < _MIN_PREFILTER_NODES
        or not compiled.ensure_numpy()
    ):
        return max_cycle_ratio(graph, lower_bound=lower_bound)

    candidate, candidate_cycle = _vectorized_howard_candidate(
        compiled, max_policy_iterations
    )
    if lower_bound is not None and (
        candidate is None or lower_bound > candidate
    ):
        # The caller's bound dominates the prefilter but carries no
        # circuit of this graph, so the shortcut does not apply.
        return max_cycle_ratio(graph, lower_bound=lower_bound)
    if candidate is None or candidate <= 0:
        # No usable policy cycle, or λ̂ = 0 where the single-probe
        # shortcut is unsound (see module docstring).
        return max_cycle_ratio(graph, lower_bound=candidate)

    scaled = ScaledGraph(graph)
    probe = find_positive_cycle(
        scaled, candidate.numerator, candidate.denominator
    )
    if probe is None:
        # Certified in one exact sweep: λ* = λ̂, candidate circuit is
        # critical (its weight at λ̂ is exactly 0).
        return CycleResult(
            ratio=candidate,
            cycle_arcs=list(candidate_cycle),
            cycle_nodes=[compiled.src[a] for a in candidate_cycle],
            iterations=1,
        )
    cost, transit = scaled.cycle_ratio(probe)
    if transit <= 0:
        raise DeadlockError(
            "constraint cycle with positive cost and non-positive "
            f"transit (L={cost}/{scaled.scale}, H={transit}/{scaled.scale}): "
            "no feasible period exists (deadlock)",
            cycle_nodes=[compiled.src[a] for a in probe],
        )
    # The prefilter undershot: ascend exactly from the probe's ratio
    # (a certified jump strictly above the candidate).
    result = max_cycle_ratio(graph, lower_bound=Fraction(cost, transit))
    result.iterations += 1
    return result


def _vectorized_howard_candidate(
    compiled,
    max_policy_iterations: int,
) -> Tuple[Optional[Fraction], Optional[List[int]]]:
    """Float Howard over the compiled arrays: ``(exact ratio, cycle)``.

    Each policy-improvement step is one vectorized pass: per-arc values
    ``w(a) + v[dst(a)]`` are reduced per source over the CSR-sorted arc
    order (``maximum.reduceat``), so the Python-level cost per iteration
    is O(n) pointer chasing for the policy cycle and values, not O(m).
    The returned ratio is the exact rational value of a real cycle —
    float error can only make the *candidate selection* suboptimal,
    never the bound unsound.
    """
    n = compiled.node_count
    m = compiled.arc_count
    cost_f = compiled.np_cost_float
    transit_f = compiled.np_transit_float
    dst = compiled.np_dst
    csr = compiled.np_csr_arcs
    src_unique = compiled.src_unique
    seg_starts = compiled.src_seg_starts
    seg_sizes = compiled.src_seg_sizes
    positions = _np.arange(m, dtype=_np.int64)

    # Initial policy: per source, the arc of maximum cost.
    policy = _np.full(n, -1, dtype=_np.int64)
    cost_s = cost_f[csr]
    seg_best = _np.maximum.reduceat(cost_s, seg_starts)
    best_rep = _np.repeat(seg_best, seg_sizes)
    hit = _np.where(cost_s == best_rep, positions, m)
    first = _np.minimum.reduceat(hit, seg_starts)
    policy[src_unique] = csr[first]

    cost_i = compiled.cost
    transit_i = compiled.transit
    best_exact: Optional[Fraction] = None
    best_cycle: Optional[List[int]] = None
    stale = 0
    for _ in range(max_policy_iterations):
        # Rate every cycle of the functional policy graph exactly and
        # take the best as the reference (multi-chain policies are the
        # norm on SCC-decomposed constraint graphs).
        exact = None
        cycle = None
        pol = policy.tolist()
        for cand_cycle in policy_cycles(compiled.dst, pol):
            num = sum(cost_i[a] for a in cand_cycle)
            den = sum(transit_i[a] for a in cand_cycle)
            if den <= 0:
                # Deadlock-shaped policy cycle: leave it to the exact
                # engine (do not steer the floats with it).
                continue
            ratio = Fraction(num, den)  # the common scale cancels
            if exact is None or ratio > exact:
                exact = ratio
                cycle = cand_cycle
        if exact is None:
            break
        if best_exact is None or exact > best_exact:
            best_exact = exact
            best_cycle = list(cycle)
            stale = 0
        else:
            # A prefilter needs a good candidate, not policy
            # convergence: bail once improvement stalls.
            stale += 1
            if stale >= 12:
                break
        lam = float(exact)
        values = _np.array(
            policy_values(
                compiled.src, compiled.dst, pol, cycle, lam,
                compiled.cost_float, compiled.transit_float,
            ),
            dtype=_np.float64,
        )
        # Vectorized improvement: best per-source arc under the current
        # potentials, switched only on a strict (+EPS) gain.
        val_arc = cost_f - lam * transit_f + values[dst]
        val_s = val_arc[csr]
        seg_best = _np.maximum.reduceat(val_s, seg_starts)
        current = val_arc[policy[src_unique]]
        improving = seg_best > current + _EPS
        if not improving.any():
            break
        best_rep = _np.repeat(seg_best, seg_sizes)
        hit = _np.where(val_s == best_rep, positions, m)
        first = _np.minimum.reduceat(hit, seg_starts)
        switched = src_unique[improving]
        policy[switched] = csr[first[improving]]
    return best_exact, best_cycle
