"""Maximum Cost-to-time Ratio Problem (MCRP) solvers.

Given a directed graph whose arcs carry a *cost* ``L(e)`` and a *transit
time* ``H(e)``, the maximum cycle ratio is

    ``λ* = max over elementary circuits c of  Σ L(e) / Σ H(e)``.

The paper (§3.3) reduces the minimum-period linear program of Theorem 2 to
an MCRP: ``Ω* = λ*`` and a critical circuit certifies the value.

Architecture
------------
All engines run on the **compiled core**: :meth:`BiValuedGraph.compile`
freezes the graph into CSR arc arrays with integer-scaled exact weights,
float shadow weights and numpy mirrors (:mod:`repro.mcrp.compiled`),
cached so the whole solve pipeline compiles once per graph. Engines
self-register in :mod:`repro.mcrp.registry`, which is the single engine
surface for the k-periodic solver, the CLI and the bench harness.

Engines (registry names)
------------------------
* ``ratio-iteration`` — the default *exact* engine: ascending
  cycle-ratio iteration with arbitrary-precision rationals; always
  returns a critical circuit and detects infeasibility (deadlock).
* ``hybrid`` — float Howard prefilter + single-probe exact
  certification; the compiled-core fast path for large graphs.
* ``howard`` — Howard policy iteration in floats with a full exact
  certification phase.
* ``lawler`` — Lawler binary search (independent cross-check).
* ``karp`` — ascending iteration on a numpy-vectorized Karp-table
  oracle; the cycle-mean core also serves the HSDF expansion baseline
  (:func:`max_cycle_mean`).
* ``karp-python`` — the same iteration pinned to the pure-Python Karp
  table (the vectorization ablation baseline).
* ``bellman`` — ascending iteration pinned to the pure-Python
  Bellman-Ford oracle (reference baseline).
"""

from repro.mcrp.graph import (
    BiValuedGraph,
    CycleResult,
    FrozenBiValuedGraph,
    ScaledFractionView,
)
from repro.mcrp.compiled import CompiledGraph, compile_graph
from repro.mcrp.registry import (
    EngineInfo,
    all_engines,
    engine_names,
    get_engine,
    register_engine,
    solve_mcrp,
)
from repro.mcrp.ratio_iteration import max_cycle_ratio
from repro.mcrp.bellman import max_cycle_ratio_bellman
from repro.mcrp.batched import (
    BatchedCompiledGraph,
    BatchedOutcome,
    batched_solve_mcrp,
)
from repro.mcrp.karp import (
    max_cycle_mean,
    max_cycle_ratio_karp,
    max_cycle_ratio_karp_python,
)
from repro.mcrp.howard import max_cycle_ratio_howard
from repro.mcrp.hybrid import max_cycle_ratio_hybrid
from repro.mcrp.lawler import max_cycle_ratio_lawler
from repro.mcrp.decompose import max_cycle_ratio_sccs

__all__ = [
    "BatchedCompiledGraph",
    "BatchedOutcome",
    "BiValuedGraph",
    "CompiledGraph",
    "CycleResult",
    "EngineInfo",
    "FrozenBiValuedGraph",
    "ScaledFractionView",
    "all_engines",
    "batched_solve_mcrp",
    "compile_graph",
    "engine_names",
    "get_engine",
    "max_cycle_mean",
    "max_cycle_ratio",
    "max_cycle_ratio_bellman",
    "max_cycle_ratio_howard",
    "max_cycle_ratio_hybrid",
    "max_cycle_ratio_karp",
    "max_cycle_ratio_karp_python",
    "max_cycle_ratio_lawler",
    "max_cycle_ratio_sccs",
    "register_engine",
    "solve_mcrp",
]
