"""Maximum Cost-to-time Ratio Problem (MCRP) solvers.

Given a directed graph whose arcs carry a *cost* ``L(e)`` and a *transit
time* ``H(e)``, the maximum cycle ratio is

    ``λ* = max over elementary circuits c of  Σ L(e) / Σ H(e)``.

The paper (§3.3) reduces the minimum-period linear program of Theorem 2 to
an MCRP: ``Ω* = λ*`` and a critical circuit certifies the value.

Engines
-------
* :mod:`repro.mcrp.ratio_iteration` — the default *exact* engine: ascending
  cycle-ratio iteration with arbitrary-precision rationals; always returns
  a critical circuit and detects infeasibility (deadlock).
* :mod:`repro.mcrp.howard` — Howard policy iteration in floats with an
  exact certification pass (fast path for large graphs).
* :mod:`repro.mcrp.lawler` — Lawler binary search (reference/cross-check).
* :mod:`repro.mcrp.karp` — Karp's algorithm for the unit-transit special
  case (maximum cycle mean, used by the HSDF expansion baseline).
"""

from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.ratio_iteration import max_cycle_ratio
from repro.mcrp.karp import max_cycle_mean
from repro.mcrp.howard import max_cycle_ratio_howard
from repro.mcrp.lawler import max_cycle_ratio_lawler
from repro.mcrp.decompose import max_cycle_ratio_sccs

__all__ = [
    "BiValuedGraph",
    "CycleResult",
    "max_cycle_ratio",
    "max_cycle_mean",
    "max_cycle_ratio_howard",
    "max_cycle_ratio_lawler",
    "max_cycle_ratio_sccs",
]
