"""Batched MCRP solving: one vectorized pass over a fleet of graphs.

The service workload (PR 2 pool, PR 5 distributed workers) is dominated
by *many small-to-medium constraint graphs per chunk*, where per-graph
numpy dispatch overhead eats the vectorization win of the compiled core.
This module stacks the int64 arc arrays ``(src, dst, cost, β)`` of an
entire chunk of compiled graphs into one segmented super-CSR
(:class:`BatchedCompiledGraph`) and runs the solver kernels over the
whole fleet at once:

* a **batched ratio-iteration probe** (`_jacobi_probe`): one
  ``maximum.reduceat`` Jacobi sweep advances the longest-path relaxation
  of *every* graph in the fleet simultaneously. Node IDs are offset per
  graph, so the stacked destination-sorted segment structure is exactly
  the concatenation of the per-graph structures — segment boundaries
  make cross-graph contamination structurally impossible. Per-graph
  convergence masks retire finished graphs from subsequent sweeps
  (a graph whose segments show no improvement has reached its private
  fixpoint: updates never cross graph boundaries, so quiescence is
  permanent).
* a **batched Karp table** (`_karp_probe`): each table row is one
  ``maximum.reduceat`` sweep over the stacked arcs; the exact max–min
  selection and the critical-cycle recovery then run per graph on that
  graph's node slice.

Exactness contract
------------------
The batch only ever *finds candidate cycles*. Every λ jump is the exact
``Fraction(Σ cost, Σ transit)`` of a verified cycle of one graph (the
per-graph compile scale cancels inside the ratio, which is why mixed
per-graph scales batch fine), every extracted cycle is re-verified with
arbitrary-precision integers before it is trusted, and every rare path —
int64 overflow mid-batch, no numpy, negative costs, a converged λ with
no certificate — delegates that one graph to the standard per-graph
pipeline (:func:`repro.mcrp.registry.solve_mcrp`). Results are therefore
bit-identical ``Fraction`` λ* to the per-graph path by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

try:  # the whole point of this module is the numpy fast path
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI
    _np = None

from repro.exceptions import DeadlockError, ReproError, SolverError
from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.karp import _NEG, _NEG_HALF, _recover_cycle
from repro.mcrp.registry import get_engine, solve_mcrp
from repro.obs.metrics import REGISTRY as _REGISTRY

_KERNEL_ROUNDS = _REGISTRY.counter("repro_batched_kernel_rounds_total")
_DELEGATIONS = _REGISTRY.counter("repro_batched_delegations_total")

#: Engine name → batched oracle kind. ``hybrid`` batches as the exact
#: Jacobi probe (the float Howard prefilter is a per-graph scalar loop
#: that buys nothing at fleet scale and is skipped — λ* is unchanged,
#: both paths are exact).
BATCHED_ORACLES: Dict[str, str] = {
    "ratio-iteration": "jacobi",
    "hybrid": "jacobi",
    "karp": "karp",
}

#: Hard cap on the stacked Karp table footprint (values + predecessors).
_MAX_TABLE_BYTES = 512 * 1024 * 1024
#: Safety valve matching ``max_cycle_ratio``'s ``max_iterations``.
_MAX_PROBES = 1_000_000


@dataclass
class BatchedOutcome:
    """Per-graph result of a batched solve.

    Exactly one of ``result`` / ``error`` is set. ``batched`` is False
    when the graph was answered by the per-graph delegation path
    (ineligible engine, no numpy, int64 overflow, rare certification
    paths) — the answer is identical either way.
    """

    result: Optional[CycleResult] = None
    error: Optional[ReproError] = None
    batched: bool = True


class BatchedCompiledGraph:
    """A fleet of compiled graphs stacked into one segmented super-CSR.

    Layout (`G` graphs, arrays in per-graph destination-sorted order)::

        graph g owns global nodes  [node_offset[g], node_offset[g+1])
        graph g owns global arcs   [arc_offset[g],  arc_offset[g+1])

        src_sorted     | g0 arcs (dst-sorted) | g1 arcs | ... |  global src ids
        cost_sorted    |         "            |    "    | ... |  int64, per-graph scale
        transit_sorted |         "            |    "    | ... |  int64, per-graph scale
        orig_arc       |         "            |    "    | ... |  global original arc id
        dst_unique     | g0 segments | g1 segments | ... |      global dst ids
        seg_starts     |      "      |      "      | ... |      global sorted-arc pos
        seg_graph      |      "      |      "      | ... |      owning graph index

    Because node IDs are globally offset and blocks are contiguous, this
    *is* the destination-sorted segment structure of the disjoint union
    graph — no re-sort happens, stacking is pure concatenation. `scales`
    keeps each graph's integer compile scale: weights never mix across
    graphs, so heterogeneous scales are fine.
    """

    def __init__(self, compiled_graphs: Sequence) -> None:
        if _np is None:  # pragma: no cover - callers gate on numpy
            raise SolverError("BatchedCompiledGraph requires numpy")
        if not compiled_graphs:
            raise SolverError("cannot stack an empty fleet")
        self.graphs = list(compiled_graphs)
        node_offset = [0]
        arc_offset = [0]
        for c in self.graphs:
            node_offset.append(node_offset[-1] + c.node_count)
            arc_offset.append(arc_offset[-1] + c.arc_count)
        self.node_offset = node_offset
        self.arc_offset = arc_offset
        self.total_nodes = node_offset[-1]
        self.total_arcs = arc_offset[-1]
        self.scales: List[int] = [c.scale for c in self.graphs]

        self.src_sorted = _np.concatenate([
            c.src_sorted + noff
            for c, noff in zip(self.graphs, node_offset)
        ])
        self.cost_sorted = _np.concatenate([
            c.np_cost[c.dst_order] for c in self.graphs
        ])
        self.transit_sorted = _np.concatenate([
            c.np_transit[c.dst_order] for c in self.graphs
        ])
        self.orig_arc = _np.concatenate([
            c.arc_ids_sorted + aoff
            for c, aoff in zip(self.graphs, arc_offset)
        ])
        self.dst_unique = _np.concatenate([
            c.dst_unique + noff
            for c, noff in zip(self.graphs, node_offset)
        ])
        self.seg_starts = _np.concatenate([
            c.seg_starts + aoff
            for c, aoff in zip(self.graphs, arc_offset)
        ])
        self.seg_sizes = _np.concatenate([
            c.seg_sizes for c in self.graphs
        ])
        self.arc_counts = _np.array(
            [c.arc_count for c in self.graphs], dtype=_np.int64
        )
        self.seg_counts = _np.array(
            [len(c.dst_unique) for c in self.graphs], dtype=_np.int64
        )
        self.seg_graph = _np.repeat(
            _np.arange(len(self.graphs), dtype=_np.int64), self.seg_counts
        )

    def active_view(self, positions: Sequence[int]) -> "_ActiveView":
        """Compacted arrays covering only the graphs in ``positions``."""
        sel = _np.zeros(len(self.graphs), dtype=bool)
        sel[list(positions)] = True
        arc_keep = _np.repeat(sel, self.arc_counts)
        seg_keep = _np.repeat(sel, self.seg_counts)
        seg_sizes = self.seg_sizes[seg_keep]
        seg_starts = _np.zeros(len(seg_sizes), dtype=_np.int64)
        if len(seg_sizes) > 1:
            _np.cumsum(seg_sizes[:-1], out=seg_starts[1:])
        return _ActiveView(
            positions=list(positions),
            src=self.src_sorted[arc_keep],
            cost=self.cost_sorted[arc_keep],
            transit=self.transit_sorted[arc_keep],
            orig_arc=self.orig_arc[arc_keep],
            dst_unique=self.dst_unique[seg_keep],
            seg_sizes=seg_sizes,
            seg_starts=seg_starts,
            seg_graph=self.seg_graph[seg_keep],
            arc_counts=self.arc_counts[list(positions)],
        )


@dataclass
class _ActiveView:
    """Arrays of :class:`BatchedCompiledGraph` restricted to live graphs.

    Compaction preserves per-graph contiguity (arcs and segments are
    grouped by graph in stack order), so ``seg_starts`` is just the
    running sum of the surviving segment sizes.
    """

    positions: List[int]
    src: "object"
    cost: "object"
    transit: "object"
    orig_arc: "object"
    dst_unique: "object"
    seg_sizes: "object"
    seg_starts: "object"
    seg_graph: "object"
    arc_counts: "object"

    def weights(self, lam_num, lam_den) -> "object":
        """Stacked parametric weights ``b_g·L − a_g·H`` (int64).

        ``lam_num``/``lam_den`` are per-graph sequences aligned with
        ``positions``; the caller has already proven every product fits
        int64 (the per-graph overflow gates).
        """
        num = _np.repeat(
            _np.array(lam_num, dtype=_np.int64), self.arc_counts
        )
        den = _np.repeat(
            _np.array(lam_den, dtype=_np.int64), self.arc_counts
        )
        return den * self.cost - num * self.transit


# ----------------------------------------------------------------------
# batched ascending ratio iteration
# ----------------------------------------------------------------------
@dataclass
class _GraphState:
    lam: Fraction
    lower: Optional[Fraction]
    critical: Optional[List[int]] = None
    iterations: int = 0


def batching_available() -> bool:
    """True when numpy is importable, i.e. the batched kernels can engage."""
    return _np is not None


def batched_solve_mcrp(
    graphs: Sequence[BiValuedGraph],
    engine: str = "ratio-iteration",
    lower_bounds: Optional[Sequence[Optional[Fraction]]] = None,
) -> List[BatchedOutcome]:
    """Solve the MCRP for a whole fleet of graphs in one batched pass.

    Returns one :class:`BatchedOutcome` per input graph, in order.
    Graphs the batched kernel cannot take (engine without a batched
    oracle, numpy absent, per-graph int64 overflow — at stacking time or
    mid-batch as λ grows — negative costs, or the rare certification
    paths of the per-graph engine) are delegated to the standard
    :func:`~repro.mcrp.registry.solve_mcrp` pipeline, so the function is
    total: every graph gets the exact same answer the per-graph path
    would produce, and ``batched`` records which route answered.
    """
    info = get_engine(engine)
    outcomes: List[Optional[BatchedOutcome]] = [None] * len(graphs)
    if not graphs:
        return []
    oracle = BATCHED_ORACLES.get(engine)

    delegations_cell = _DELEGATIONS.labels(engine=engine)

    def delegate(index: int, lower: Optional[Fraction]) -> None:
        delegations_cell.inc()
        try:
            result = solve_mcrp(graphs[index], info, lower_bound=lower)
        except ReproError as exc:
            outcomes[index] = BatchedOutcome(error=exc, batched=False)
        else:
            outcomes[index] = BatchedOutcome(result=result, batched=False)

    bounds = list(lower_bounds) if lower_bounds is not None else [None] * len(graphs)
    if len(bounds) != len(graphs):
        raise SolverError("lower_bounds must align with graphs")

    if _np is None or oracle is None or not info.batched:
        for i in range(len(graphs)):
            delegate(i, bounds[i])
        return [o for o in outcomes if o is not None]

    # ------------------------------------------------------------------
    # partition: stackable graphs vs per-graph delegations
    member_index: List[int] = []
    member_compiled = []
    for i, graph in enumerate(graphs):
        if graph.node_count == 0 or graph.arc_count == 0:
            outcomes[i] = BatchedOutcome(result=CycleResult(ratio=None))
            continue
        compiled = graph.compile()
        if (
            compiled.has_negative_cost
            or not compiled.ensure_numpy()
            or compiled.np_cost is None
        ):
            delegate(i, bounds[i])
            continue
        member_index.append(i)
        member_compiled.append(compiled)

    if member_compiled:
        stack = BatchedCompiledGraph(member_compiled)
        _iterate_stack(stack, member_index, graphs, bounds, oracle,
                       outcomes, delegate,
                       rounds_cell=_KERNEL_ROUNDS.labels(engine=engine))
    for i, outcome in enumerate(outcomes):
        if outcome is None:  # pragma: no cover - defensive totality
            delegate(i, bounds[i])
    return [o for o in outcomes if o is not None]


def _iterate_stack(stack, member_index, graphs, bounds, oracle,
                   outcomes, delegate, rounds_cell=None) -> None:
    """Ascending λ iteration over the stacked fleet (exact per graph)."""
    states: Dict[int, _GraphState] = {}
    for pos, i in enumerate(member_index):
        lam = Fraction(0) if bounds[i] is None else Fraction(bounds[i])
        if lam < 0:
            lam = Fraction(0)
        states[pos] = _GraphState(lam=lam, lower=bounds[i])

    active: List[int] = sorted(states)
    while active:
        # per-graph int64 gates, re-checked every probe (λ only grows)
        probe_set: List[int] = []
        for pos in active:
            st = states[pos]
            compiled = stack.graphs[pos]
            num, den = st.lam.numerator, st.lam.denominator
            n = compiled.node_count
            ok = (
                -(1 << 62) < num < (1 << 62)
                and den < (1 << 62)
                and compiled.parametric_weight_bound(num, den)
                < (1 << 62) // (3 * n + 4)
                and st.iterations < _MAX_PROBES
            )
            if ok:
                probe_set.append(pos)
            else:
                # λ outgrew the int64 fast path mid-batch: finish this
                # graph per-graph. A jumped λ is a certified cycle
                # ratio, hence a valid lower bound; an unjumped λ is
                # the caller's own hint, whose overshoot handling the
                # per-graph engine already implements.
                i = member_index[pos]
                delegate(i, st.lam if st.critical is not None else st.lower)
        if not probe_set:
            break

        if rounds_cell is not None:
            rounds_cell.inc()
        if oracle == "jacobi":
            cycles, quiet, punt = _jacobi_probe(stack, states, probe_set)
        else:
            cycles, quiet, punt = _karp_probe(stack, states, probe_set)

        next_active: List[int] = []
        for pos in probe_set:
            st = states[pos]
            st.iterations += 1
            i = member_index[pos]
            if pos in punt:
                # the kernel could not certify this graph (pointer churn
                # past the sweep budget, Karp gates): per-graph finish.
                delegate(i, st.lam if st.critical is not None else st.lower)
                continue
            if pos in quiet:
                if st.critical is None:
                    # Converged without ever jumping: either λ* ≤ 0
                    # (zero-ratio certification) or the seed was ≥ λ*
                    # (retry from just below, then from scratch). The
                    # per-graph engine owns both rare paths.
                    delegate(i, st.lower)
                    continue
                compiled = stack.graphs[pos]
                graph = graphs[i]
                outcomes[i] = BatchedOutcome(result=CycleResult(
                    ratio=st.lam,
                    cycle_arcs=list(st.critical),
                    cycle_nodes=[graph.arc_src[a] for a in st.critical],
                    iterations=st.iterations,
                ))
                continue
            cycle = cycles[pos]
            compiled = stack.graphs[pos]
            cost = sum(compiled.cost[a] for a in cycle)
            transit = sum(compiled.transit[a] for a in cycle)
            if transit <= 0:
                graph = graphs[i]
                outcomes[i] = BatchedOutcome(error=DeadlockError(
                    "constraint cycle with positive cost and non-positive "
                    f"transit (L={cost}/{compiled.scale}, "
                    f"H={transit}/{compiled.scale}): "
                    "no feasible period exists (deadlock)",
                    cycle_nodes=[graph.arc_src[a] for a in cycle],
                ))
                continue
            st.lam = Fraction(cost, transit)
            st.critical = cycle
            next_active.append(pos)
        active = next_active


def _jacobi_probe(
    stack: BatchedCompiledGraph,
    states: Dict[int, _GraphState],
    positions: List[int],
) -> Tuple[Dict[int, List[int]], Set[int], Set[int]]:
    """One fleet-wide positive-cycle probe at the per-graph current λ.

    Mirrors :func:`repro.mcrp.bellman._find_cycle_numpy` with the fleet
    twist: ``dist``/``pred`` live in the global node space, each sweep is
    one ``maximum.reduceat`` over the arcs of every still-searching
    graph, and a graph whose segments all go quiet is retired on the
    spot (its relaxation reached its fixpoint — no positive cycle).

    Returns ``(cycles, quiet, punt)``: verified positive cycles in local
    arc indices, graphs proven cycle-free at their λ, and graphs whose
    pointers never settled within the ``3n+2`` budget (the caller
    finishes those per-graph).
    """
    cycles: Dict[int, List[int]] = {}
    quiet: Set[int] = set()
    punt: Set[int] = set()

    current = list(positions)
    view = stack.active_view(current)
    lam = {pos: states[pos].lam for pos in current}
    w = view.weights(
        [lam[p].numerator for p in current],
        [lam[p].denominator for p in current],
    )
    dist = _np.zeros(stack.total_nodes, dtype=_np.int64)
    pred = _np.full(stack.total_nodes, -1, dtype=_np.int64)
    sweeps = {pos: 0 for pos in current}
    start_node: Dict[int, int] = {}

    while current:
        positions_arr = _np.arange(len(w), dtype=_np.int64)
        cand = dist[view.src] + w
        seg_best = _np.maximum.reduceat(cand, view.seg_starts)
        improved = seg_best > dist[view.dst_unique]

        retired: Set[int] = set()
        if improved.any():
            moving = set(view.seg_graph[improved].tolist())
            # predecessor recording: first arc achieving each segment max
            best_rep = _np.repeat(seg_best, view.seg_sizes)
            hit = _np.where(cand == best_rep, positions_arr, len(w))
            first_hit = _np.minimum.reduceat(hit, view.seg_starts)
            touched = view.dst_unique[improved]
            dist[touched] = seg_best[improved]
            pred[touched] = view.orig_arc[first_hit[improved]]
            sweep_first: Dict[int, int] = {}
            for g_pos, node in zip(view.seg_graph[improved].tolist(),
                                   touched.tolist()):
                sweep_first.setdefault(g_pos, node)
            start_node.update(sweep_first)
        else:
            moving = set()

        for pos in current:
            if pos not in moving:
                # No segment of this graph improved: its private Jacobi
                # fixpoint is reached (updates never cross graph
                # boundaries), hence no positive cycle at its λ.
                quiet.add(pos)
                retired.add(pos)
                continue
            sweeps[pos] += 1
            n = stack.graphs[pos].node_count
            sweep = sweeps[pos]
            if (sweep & 15 == 15 or sweep > n) and pos in start_node:
                cycle = _extract_cycle(stack, pos, pred,
                                       start_node[pos], states[pos].lam)
                if cycle is not None:
                    cycles[pos] = cycle
                    retired.add(pos)
                    continue
            if sweep >= 3 * n + 2:
                punt.add(pos)
                retired.add(pos)

        if retired:
            current = [pos for pos in current if pos not in retired]
            if not current:
                break
            view = stack.active_view(current)
            w = view.weights(
                [lam[p].numerator for p in current],
                [lam[p].denominator for p in current],
            )
    return cycles, quiet, punt


def _extract_cycle(
    stack: BatchedCompiledGraph,
    pos: int,
    pred,
    start: int,
    lam: Fraction,
) -> Optional[List[int]]:
    """Predecessor-chain walk within one graph's node block (verified).

    ``pred`` holds *global* original arc ids; the walk maps them back to
    the graph's local arc indices and re-verifies strict positivity of
    the candidate cycle with arbitrary-precision integers — an unproven
    pointer cycle is simply dropped (the sweeps continue).
    """
    compiled = stack.graphs[pos]
    aoff = stack.arc_offset[pos]
    noff = stack.node_offset[pos]
    seen_at: Dict[int, int] = {}
    chain: List[int] = []
    node = start
    while node not in seen_at:
        seen_at[node] = len(chain)
        arc = int(pred[node])
        if arc < 0:
            return None
        local = arc - aoff
        chain.append(local)
        node = compiled.src[local] + noff
    cycle = chain[seen_at[node]:]
    cycle.reverse()
    num, den = lam.numerator, lam.denominator
    total = sum(
        den * compiled.cost[a] - num * compiled.transit[a] for a in cycle
    )
    if total <= 0:
        return None
    return cycle


# ----------------------------------------------------------------------
# batched Karp table
# ----------------------------------------------------------------------
def _karp_probe(
    stack: BatchedCompiledGraph,
    states: Dict[int, _GraphState],
    positions: List[int],
) -> Tuple[Dict[int, List[int]], Set[int], Set[int]]:
    """Fleet-wide Karp-table probe: positive-mean cycles at per-graph λ.

    One stacked table serves every graph: row ``k`` holds the best
    ``k``-arc walk value ending at each global node, advanced for all
    graphs by a single ``maximum.reduceat`` per row. Graph ``g`` only
    ever reads its own rows ``0..n_g`` during the exact max–min
    selection, so the table height is ``max n_g`` and shorter graphs
    simply ignore the deeper rows. Gates (per graph): table entries must
    stay within ±2^61 for ``max n`` rows and the selection cross
    products within int64 — failures are punted to the per-graph path,
    as is the whole probe set when the stacked table would not fit
    ``_MAX_TABLE_BYTES``.
    """
    cycles: Dict[int, List[int]] = {}
    quiet: Set[int] = set()
    punt: Set[int] = set()

    current: List[int] = []
    for pos in positions:
        compiled = stack.graphs[pos]
        st = states[pos]
        n = compiled.node_count
        bound = max(1, compiled.parametric_weight_bound(
            st.lam.numerator, st.lam.denominator))
        if 2 * n * n * bound >= (1 << 62):
            punt.add(pos)
        else:
            current.append(pos)
    if not current:
        return cycles, quiet, punt

    max_n = max(stack.graphs[pos].node_count for pos in current)
    while current:
        table_bytes = (max_n + 1) * stack.total_nodes * 16
        row_bound_ok = all(
            (max_n + 1) * max(1, stack.graphs[pos].parametric_weight_bound(
                states[pos].lam.numerator, states[pos].lam.denominator))
            < (1 << 61)
            for pos in current
        )
        if table_bytes <= _MAX_TABLE_BYTES and row_bound_ok:
            break
        # shed the deepest graph and retry — it dominates both the
        # memory footprint and the walk-sum bound
        deepest = max(current, key=lambda p: stack.graphs[p].node_count)
        punt.add(deepest)
        current.remove(deepest)
        if current:
            max_n = max(stack.graphs[pos].node_count for pos in current)
    if not current:
        return cycles, quiet, punt

    view = stack.active_view(current)
    lam = {pos: states[pos].lam for pos in current}
    w = view.weights(
        [lam[p].numerator for p in current],
        [lam[p].denominator for p in current],
    )
    N = stack.total_nodes
    m = len(w)
    table = _np.full((max_n + 1, N), _NEG, dtype=_np.int64)
    preds = _np.full((max_n + 1, N), -1, dtype=_np.int64)
    table[0] = 0
    positions_arr = _np.arange(m, dtype=_np.int64)
    prev = table[0]
    for k in range(1, max_n + 1):
        du = prev[view.src]
        cand = _np.where(du <= _NEG_HALF, _NEG, du + w)
        seg_best = _np.maximum.reduceat(cand, view.seg_starts)
        valid = seg_best > _NEG_HALF
        if not valid.any():
            break  # every walk died out: all later rows stay -inf
        touched = view.dst_unique[valid]
        row = table[k]
        row[touched] = seg_best[valid]
        best_rep = _np.repeat(seg_best, view.seg_sizes)
        hit = _np.where(cand == best_rep, positions_arr, m)
        first = _np.minimum.reduceat(hit, view.seg_starts)
        preds[k][touched] = view.orig_arc[first[valid]]
        prev = row

    for pos in current:
        compiled = stack.graphs[pos]
        st = states[pos]
        n = compiled.node_count
        noff = stack.node_offset[pos]
        aoff = stack.arc_offset[pos]
        sl = slice(noff, noff + n)
        d_n = table[n][sl]
        alive = d_n > _NEG_HALF
        if not alive.any():
            quiet.add(pos)  # no n-arc walk at all: the graph is acyclic
            continue
        # per node v: min over k of (D_n − D_k)/(n − k), exact
        # cross-multiplied comparisons (the caller's gate proves fit)
        worst_num = d_n.copy()
        worst_den = _np.full(n, n, dtype=_np.int64)
        for k in range(1, n):
            row = table[k][sl]
            finite = row > _NEG_HALF
            if not finite.any():
                break  # reachability only shrinks as k grows
            num = _np.where(finite, d_n - row, 0)
            den = n - k
            better = finite & (num * worst_den < worst_num * den)
            worst_num = _np.where(better, num, worst_num)
            worst_den = _np.where(better, den, worst_den)
        best_node = -1
        best_num, best_den = 0, 1
        for v in _np.nonzero(alive)[0]:
            cand_num, cand_den = int(worst_num[v]), int(worst_den[v])
            if best_node < 0 or cand_num * best_den > best_num * cand_den:
                best_num, best_den, best_node = cand_num, cand_den, int(v)
        if best_num <= 0:
            quiet.add(pos)  # best mean ≤ 0: no positive cycle at this λ
            continue
        weights = compiled.parametric_weights(
            st.lam.numerator, st.lam.denominator)
        pred_rows = [
            _np.where(preds[k][sl] >= 0, preds[k][sl] - aoff, -1)
            for k in range(n + 1)
        ]
        cycles[pos] = _recover_cycle(
            n, pred_rows, compiled.src, compiled.dst, weights,
            best_node, Fraction(best_num, best_den),
        )
    return cycles, quiet, punt
