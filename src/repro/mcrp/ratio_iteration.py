"""Exact maximum cycle ratio by ascending ratio iteration.

The classical "cycle cancelling from below" scheme:

1. start from a lower bound ``λ_0`` (0 by default — valid because costs are
   non-negative in throughput constraint graphs);
2. search for a cycle of positive weight under ``w = L − λ_k·H``;
3. if one is found with transit ``H(c) > 0``, jump to ``λ_{k+1} = L(c)/H(c)``
   (a strict increase) and repeat; a positive cycle with ``H(c) ≤ 0`` stays
   positive for every larger λ, i.e. the constraint system is infeasible
   for every period — in CSDF terms, the graph **deadlocks**;
4. when no positive cycle remains, ``λ* = λ_k`` and the last jump cycle is
   critical (its weight at ``λ*`` is exactly 0).

Each jump moves to the exact ratio of a distinct elementary cycle, so the
iteration terminates; in practice a handful of jumps suffice (this is the
behaviour the paper's K-Iter exploits at the outer level as well).

All arithmetic is exact; see :mod:`repro.mcrp.bellman`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Optional

from repro.exceptions import DeadlockError, SolverError
from repro.mcrp.bellman import (
    ScaledGraph,
    certify_zero_ratio,
    find_positive_cycle,
)
from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.registry import register_engine

#: A positive-cycle oracle: ``(scaled, lam_num, lam_den) -> cycle | None``.
Oracle = Callable[[ScaledGraph, int, int], Optional[List[int]]]


@register_engine(
    "ratio-iteration",
    supports_lower_bound=True,
    vectorized=True,
    batched=True,
    summary="ascending exact cycle-ratio iteration (default engine; "
            "numpy Jacobi oracle when the int64 fast path applies)",
)
def max_cycle_ratio(
    graph: BiValuedGraph,
    *,
    lower_bound: Optional[Fraction] = None,
    max_iterations: int = 1_000_000,
    oracle: Optional[Oracle] = None,
    _retried: bool = False,
) -> CycleResult:
    """Exact maximum cycle ratio ``λ*`` with a critical-circuit certificate.

    Parameters
    ----------
    graph:
        Bi-valued digraph with **non-negative costs** (checked). Transits
        may have any sign, but every cycle must have positive total
        transit; a violating cycle means the underlying schedule problem
        is infeasible and raises :class:`DeadlockError`.
    lower_bound:
        A known lower bound on ``λ*`` to start from (e.g. a previously
        certified cycle ratio). Must genuinely be a lower bound; it is
        validated by the convergence logic (an overshoot is detected and
        the search restarts from 0).
    oracle:
        Positive-cycle oracle to drive the iteration with (defaults to
        the dispatching :func:`repro.mcrp.bellman.find_positive_cycle`).
        The ``bellman`` and ``karp`` registry engines are this very
        iteration running alternative oracles.

    Returns
    -------
    CycleResult
        ``ratio is None`` iff the graph is acyclic.

    Raises
    ------
    DeadlockError
        If some cycle has positive cost but non-positive transit (no
        finite period satisfies the constraints).
    """
    if graph.node_count == 0 or graph.arc_count == 0:
        return CycleResult(ratio=None)
    scaled = ScaledGraph(graph)
    if scaled.compiled.has_negative_cost:
        raise SolverError("ratio iteration requires non-negative arc costs")
    if oracle is None:
        oracle = find_positive_cycle

    lam = Fraction(0) if lower_bound is None else Fraction(lower_bound)
    if lam < 0:
        lam = Fraction(0)
    critical: Optional[list] = None
    iterations = 0

    while True:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise SolverError(
                f"ratio iteration did not converge in {max_iterations} steps"
            )
        cycle = oracle(scaled, lam.numerator, lam.denominator)
        if cycle is None:
            break
        cost, transit = scaled.cycle_ratio(cycle)
        if transit <= 0:
            raise DeadlockError(
                "constraint cycle with positive cost and non-positive "
                f"transit (L={cost}/{scaled.scale}, H={transit}/{scaled.scale}): "
                "no feasible period exists (deadlock)",
                cycle_nodes=[graph.arc_src[a] for a in cycle],
            )
        lam = Fraction(cost, transit)
        critical = cycle

    if critical is None:
        if lower_bound is not None and lam > 0:
            # Either the hint was exactly λ* (common when the caller's
            # bound is a real cycle's ratio) or it overshot. Try once
            # from just below the hint — the λ*-cycle is then strictly
            # positive and gets certified in one jump; a genuine
            # overshoot falls back to a clean restart.
            if not _retried:
                return max_cycle_ratio(
                    graph,
                    lower_bound=lam - Fraction(1, 2),
                    max_iterations=max_iterations,
                    oracle=oracle,
                    _retried=True,
                )
            return max_cycle_ratio(
                graph, max_iterations=max_iterations, oracle=oracle
            )
        # λ* ≤ 0 with non-negative costs: every cycle has zero total cost.
        # certify_zero_ratio returns an H>0 cycle (ratio 0), None when the
        # graph imposes no period bound, or raises DeadlockError on a
        # zero-cost negative-transit cycle (invisible at λ = 0).
        cert = certify_zero_ratio(scaled)
        if cert is None:
            return CycleResult(ratio=None, iterations=iterations)
        critical = cert
        lam = Fraction(0)
    # When at least one jump happened, lam > 0 (a positive-weight cycle at
    # λ ≥ 0 with H > 0 has L > 0), and convergence at lam certifies there
    # is no cycle with H ≤ 0 either (it would still be positive at lam).

    nodes = [graph.arc_src[a] for a in critical]
    return CycleResult(
        ratio=lam,
        cycle_arcs=list(critical),
        cycle_nodes=nodes,
        iterations=iterations,
    )
