"""The bi-valued digraph the MCRP engines operate on.

Nodes are dense integers ``0..n-1``; each arc carries an integer (or
Fraction) cost ``L`` and an exact Fraction transit ``H``. Arc storage is
struct-of-arrays for cache-friendly traversal in the inner solver loops.

The graph also keeps an optional ``labels`` list so solver results can be
mapped back to the CSDF world (labels are ``(task, phase)`` pairs for
constraint graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Sequence, Tuple


class BiValuedGraph:
    """A directed multigraph with ``(L, H)``-valued arcs.

    Examples
    --------
    >>> g = BiValuedGraph(2)
    >>> _ = g.add_arc(0, 1, 3, Fraction(1, 2))
    >>> _ = g.add_arc(1, 0, 1, Fraction(1, 2))
    >>> g.arc_count
    2
    """

    def __init__(self, node_count: int = 0, labels: Optional[Sequence[Hashable]] = None):
        if node_count < 0:
            raise ValueError("node_count must be non-negative")
        self.node_count = node_count
        self.labels: List[Hashable] = (
            list(labels) if labels is not None else list(range(node_count))
        )
        if labels is not None and len(self.labels) != node_count:
            raise ValueError("labels length must equal node_count")
        self.arc_src: List[int] = []
        self.arc_dst: List[int] = []
        self.arc_cost: List[Fraction] = []    # L(e)
        self.arc_transit: List[Fraction] = []  # H(e)
        self._out: List[List[int]] = [[] for _ in range(node_count)]
        self._compiled = None

    # ------------------------------------------------------------------
    def add_node(self, label: Hashable = None) -> int:
        idx = self.node_count
        self.node_count += 1
        self.labels.append(label if label is not None else idx)
        self._out.append([])
        self._compiled = None
        return idx

    def add_arc(self, src: int, dst: int, cost, transit) -> int:
        """Add an arc; returns its index."""
        if not (0 <= src < self.node_count and 0 <= dst < self.node_count):
            raise ValueError(f"arc ({src},{dst}) out of range")
        idx = len(self.arc_src)
        self.arc_src.append(src)
        self.arc_dst.append(dst)
        self.arc_cost.append(Fraction(cost))
        self.arc_transit.append(Fraction(transit))
        self._out[src].append(idx)
        self._compiled = None
        return idx

    def extend_arcs(self, srcs, dsts, costs, transits) -> None:
        """Bulk arc insertion (endpoint validation is the caller's job).

        Used by the constraint-graph builder where arcs come out of the
        vectorized Theorem 2 sweep by the hundred thousand.
        """
        base = len(self.arc_src)
        self.arc_src.extend(srcs)
        self.arc_dst.extend(dsts)
        self.arc_cost.extend(costs)
        self.arc_transit.extend(transits)
        out = self._out
        for i, s in enumerate(self.arc_src[base:], start=base):
            out[s].append(i)
        self._compiled = None

    @property
    def arc_count(self) -> int:
        return len(self.arc_src)

    # ------------------------------------------------------------------
    def compile(self):
        """Frozen arc-array (CSR) form of this graph, cached until mutation.

        Returns a :class:`repro.mcrp.compiled.CompiledGraph`. Every
        solver-facing consumer (positive-cycle oracle, SCC sweep,
        longest-path potentials, float prefilters) works off this one
        shared compilation, so repeated solves on the same graph pay the
        array construction exactly once.

        Mutating the arc lists *directly* (bypassing
        :meth:`add_arc`/:meth:`extend_arcs`) leaves a stale cache; call
        :meth:`invalidate` afterwards in that case.
        """
        if self._compiled is None:
            from repro.mcrp.compiled import compile_graph

            self._compiled = compile_graph(self)
        return self._compiled

    def invalidate(self) -> None:
        """Drop the cached compilation (after in-place arc edits)."""
        self._compiled = None

    def out_arcs(self, node: int) -> List[int]:
        return self._out[node]

    def arcs(self) -> List[Tuple[int, int, Fraction, Fraction]]:
        """All arcs as ``(src, dst, L, H)`` tuples."""
        return [
            (self.arc_src[i], self.arc_dst[i], self.arc_cost[i], self.arc_transit[i])
            for i in range(self.arc_count)
        ]

    # ------------------------------------------------------------------
    def cycle_values(self, arc_indices: Sequence[int]) -> Tuple[Fraction, Fraction]:
        """``(Σ L, Σ H)`` along a sequence of arc indices."""
        total_cost = Fraction(0)
        total_transit = Fraction(0)
        for i in arc_indices:
            total_cost += self.arc_cost[i]
            total_transit += self.arc_transit[i]
        return total_cost, total_transit

    def check_cycle(self, arc_indices: Sequence[int]) -> None:
        """Validate that arc indices form a closed walk (raises otherwise)."""
        if not arc_indices:
            raise ValueError("empty arc sequence is not a cycle")
        for a, b in zip(arc_indices, arc_indices[1:]):
            if self.arc_dst[a] != self.arc_src[b]:
                raise ValueError("arc sequence is not a path")
        if self.arc_dst[arc_indices[-1]] != self.arc_src[arc_indices[0]]:
            raise ValueError("arc sequence does not close a cycle")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BiValuedGraph(nodes={self.node_count}, arcs={self.arc_count})"


class ScaledFractionView(Sequence):
    """Read-only ``Fraction`` view over integer-scaled values.

    ``view[i] == Fraction(values[i], scale)`` — the Fraction is built on
    access and never stored, so a :class:`FrozenBiValuedGraph` can expose
    the exact ``arc_cost``/``arc_transit`` interface without allocating
    one Fraction per arc up front (they materialize lazily, only for
    certification and back-mapping).

    Examples
    --------
    >>> v = ScaledFractionView([6, 2, 1], 2)
    >>> v[0], v[2], len(v)
    (Fraction(3, 1), Fraction(1, 2), 3)
    """

    __slots__ = ("_values", "_scale")

    def __init__(self, values: Sequence[int], scale: int):
        self._values = values
        self._scale = scale

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [Fraction(v, self._scale) for v in self._values[index]]
        return Fraction(self._values[index], self._scale)

    def __iter__(self):
        scale = self._scale
        for v in self._values:
            yield Fraction(v, scale)


class FrozenBiValuedGraph(BiValuedGraph):
    """A read-only :class:`BiValuedGraph` assembled around a compiled form.

    The direct K-expansion pipeline builds the
    :class:`~repro.mcrp.compiled.CompiledGraph` arithmetically (int64
    arrays, no per-arc Fractions) and wraps it in this class so every
    existing consumer — engines, SCC sweep, potentials, certification —
    sees the ordinary ``BiValuedGraph`` interface. ``arc_cost`` and
    ``arc_transit`` are :class:`ScaledFractionView`\\ s over the compiled
    integers; mutation is refused (the compiled arrays are the single
    source of truth), and :meth:`invalidate` is a no-op for the same
    reason.
    """

    def __init__(self, compiled):
        self.node_count = compiled.node_count
        self.labels = compiled.labels
        self.arc_src = compiled.src
        self.arc_dst = compiled.dst
        self.arc_cost = ScaledFractionView(compiled.cost, compiled.scale)
        self.arc_transit = ScaledFractionView(
            compiled.transit, compiled.scale
        )
        self._out = compiled.out_arcs
        self._compiled = compiled

    def add_node(self, label: Hashable = None) -> int:
        raise TypeError("FrozenBiValuedGraph is immutable")

    def add_arc(self, src: int, dst: int, cost, transit) -> int:
        raise TypeError("FrozenBiValuedGraph is immutable")

    def extend_arcs(self, srcs, dsts, costs, transits) -> None:
        raise TypeError("FrozenBiValuedGraph is immutable")

    def compile(self):
        return self._compiled

    def invalidate(self) -> None:
        """No-op: the compiled arrays *are* the graph."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrozenBiValuedGraph(nodes={self.node_count}, "
            f"arcs={self.arc_count})"
        )


@dataclass
class CycleResult:
    """Result of a max-cycle-ratio computation.

    Attributes
    ----------
    ratio:
        The exact maximum cycle ratio ``λ*`` (``None`` when the graph is
        acyclic, i.e. the constraint system imposes no period bound).
    cycle_arcs:
        Arc indices of a critical circuit achieving the ratio.
    cycle_nodes:
        Node indices along the circuit (same order as the arcs' sources).
    iterations:
        Engine iterations performed (for benchmarking/ablations).
    """

    ratio: Optional[Fraction]
    cycle_arcs: List[int] = field(default_factory=list)
    cycle_nodes: List[int] = field(default_factory=list)
    iterations: int = 0

    @property
    def is_acyclic(self) -> bool:
        return self.ratio is None

    def node_labels(self, graph: BiValuedGraph) -> List[Hashable]:
        return [graph.labels[n] for n in self.cycle_nodes]
