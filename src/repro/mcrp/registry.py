"""The MCRP engine registry: one surface for every solver consumer.

Engines register themselves with :func:`register_engine` at module
import; the k-periodic solver, the CLI, the bench harness and the
ablation benchmarks all enumerate the same table instead of wiring up
private engine dicts. Each entry carries capability metadata so the
shared solve pipeline (:func:`solve_mcrp`) knows how to drive the
engine:

``exact``
    The returned ``CycleResult.ratio`` is the exact ``λ*`` (every
    built-in engine is exact; float phases are prefilters only).
``float_prefilter``
    The engine runs a float phase before exact certification (Howard,
    hybrid) — useful for benchmark grouping.
``supports_scc``
    The engine may be run per strongly connected component by
    :func:`repro.mcrp.decompose.max_cycle_ratio_sccs`.
``supports_lower_bound``
    The engine accepts a certified ``lower_bound=`` keyword to warm
    start from.
``quadratic``
    The engine's oracle is Θ(nm) per probe (Karp) — benchmark drivers
    keep such engines off the largest instances.
``vectorized``
    The engine's hot path runs over the compiled core's numpy arrays
    when they are available (``hybrid``, ``karp``, ``ratio-iteration``);
    engines without the flag are pinned to pure-Python loops and serve
    as ablation baselines (``bellman``, ``karp-python``).
``batched``
    The engine has a fleet kernel in :mod:`repro.mcrp.batched`: whole
    chunks of compiled graphs are stacked into one super-CSR and every
    ``maximum.reduceat`` sweep advances all of them at once. The service
    pool routes eligible chunks through it; engines without the flag
    always solve one graph at a time.

Adding an engine
----------------
Write a function with the :func:`repro.mcrp.max_cycle_ratio` contract
(takes a ``BiValuedGraph``, returns a ``CycleResult``, raises
``DeadlockError`` on infeasible constraint cycles) and decorate it::

    from repro.mcrp.registry import register_engine

    @register_engine("my-engine", supports_lower_bound=True,
                     summary="one-line description")
    def max_cycle_ratio_mine(graph, *, lower_bound=None):
        ...

Import the defining module from :mod:`repro.mcrp` so registration
happens on package import, and the engine becomes selectable everywhere
(``min_period_for_k(..., engine="my-engine")``, ``repro throughput
--engine my-engine``, the cross-engine property tests).

Out-of-tree engines need no edits here: ship the module in a
distribution exposing it under the ``repro.engines`` entry-point group,
or list it in the ``REPRO_ENGINE_MODULES`` environment variable
(comma-separated module paths); both are imported lazily on the first
registry lookup (see ``_load_plugin_engines``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Union

from repro.exceptions import SolverError
from repro.mcrp.graph import BiValuedGraph, CycleResult


@dataclass(frozen=True)
class EngineInfo:
    """Registry entry: the solve callable plus capability metadata.

    Examples
    --------
    >>> from repro.mcrp.registry import get_engine
    >>> info = get_engine("karp")
    >>> info.name, info.exact, info.quadratic, info.vectorized
    ('karp', True, True, True)
    >>> get_engine("karp-python").vectorized
    False
    """

    name: str
    solve: Callable[..., CycleResult]
    exact: bool = True
    float_prefilter: bool = False
    supports_scc: bool = True
    supports_lower_bound: bool = False
    quadratic: bool = False
    vectorized: bool = False
    batched: bool = False
    summary: str = ""


_REGISTRY: Dict[str, EngineInfo] = {}
_PLUGINS_LOADED = False

#: Entry-point group and environment variable scanned for out-of-tree
#: engines (see ``_load_plugin_engines``).
PLUGIN_ENTRY_POINT_GROUP = "repro.engines"
PLUGIN_ENV_VAR = "REPRO_ENGINE_MODULES"


def register_engine(
    name: str,
    *,
    exact: bool = True,
    float_prefilter: bool = False,
    supports_scc: bool = True,
    supports_lower_bound: bool = False,
    quadratic: bool = False,
    vectorized: bool = False,
    batched: bool = False,
    summary: str = "",
):
    """Class-of-service decorator registering an MCRP engine by name."""

    def decorator(fn: Callable[..., CycleResult]) -> Callable[..., CycleResult]:
        if name in _REGISTRY:
            raise ValueError(f"duplicate MCRP engine name {name!r}")
        _REGISTRY[name] = EngineInfo(
            name=name,
            solve=fn,
            exact=exact,
            float_prefilter=float_prefilter,
            supports_scc=supports_scc,
            supports_lower_bound=supports_lower_bound,
            quadratic=quadratic,
            vectorized=vectorized,
            batched=batched,
            summary=summary,
        )
        return fn

    return decorator


def _ensure_builtins() -> None:
    """Import the engine modules so their decorators have run."""
    import repro.mcrp  # noqa: F401  (package import registers everything)

    global _PLUGINS_LOADED
    if not _PLUGINS_LOADED:
        # Flag only flips on success: a broken plugin keeps raising on
        # every lookup instead of silently degrading to the built-ins.
        _load_plugin_engines()
        _PLUGINS_LOADED = True


def _load_plugin_engines() -> None:
    """Import out-of-tree engine modules (the plugin contract).

    Two discovery channels, both resolved once, lazily, on the first
    registry lookup:

    * the ``repro.engines`` entry-point group — a distribution ships
      ``[project.entry-points."repro.engines"] myengine = "mypkg.engine"``
      and its module's :func:`register_engine` decorators run on load;
    * the ``REPRO_ENGINE_MODULES`` environment variable — a
      comma-separated list of importable module paths, for plugins that
      are not installed distributions (notebooks, vendored code).

    A plugin that fails to import raises :class:`SolverError`
    immediately: a misconfigured engine source must not silently
    degrade to the built-ins.
    """
    import importlib
    import os

    for name in os.environ.get(PLUGIN_ENV_VAR, "").split(","):
        name = name.strip()
        if not name:
            continue
        try:
            importlib.import_module(name)
        except Exception as exc:
            raise SolverError(
                f"failed to import engine plugin module {name!r} "
                f"(from ${PLUGIN_ENV_VAR}): {exc}"
            ) from exc
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8
        return
    try:
        points = entry_points(group=PLUGIN_ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - py<3.10 dict API
        points = entry_points().get(PLUGIN_ENTRY_POINT_GROUP, [])
    for point in points:
        try:
            point.load()
        except Exception as exc:
            raise SolverError(
                f"failed to load engine plugin entry point "
                f"{point.name!r}: {exc}"
            ) from exc


def engine_names() -> List[str]:
    """Sorted names of every registered engine.

    Examples
    --------
    >>> from repro.mcrp.registry import engine_names
    >>> [n for n in engine_names() if n.startswith("karp")]
    ['karp', 'karp-python']
    >>> "hybrid" in engine_names()
    True
    """
    _ensure_builtins()
    return sorted(_REGISTRY)


def all_engines() -> List[EngineInfo]:
    """Every registry entry, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_engine(name: str) -> EngineInfo:
    """Look up an engine; :class:`SolverError` names the choices on a miss."""
    _ensure_builtins()
    info = _REGISTRY.get(name)
    if info is None:
        raise SolverError(
            f"unknown MCRP engine {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return info


def solve_mcrp(
    graph: BiValuedGraph,
    engine: Union[str, EngineInfo] = "ratio-iteration",
    *,
    lower_bound: Optional[Fraction] = None,
    decompose: bool = True,
) -> CycleResult:
    """Solve the MCRP with a named engine through the shared pipeline.

    Applies the SCC sweep with champion pruning when the engine supports
    it; ``lower_bound`` (a certified lower bound on ``λ*``) always seeds
    the pruning champion, and additionally warm-starts the engine when
    it accepts bounds.

    Examples
    --------
    >>> from fractions import Fraction
    >>> from repro.mcrp.graph import BiValuedGraph
    >>> from repro.mcrp.registry import solve_mcrp
    >>> g = BiValuedGraph(2)
    >>> _ = g.add_arc(0, 1, 3, 1)
    >>> _ = g.add_arc(1, 0, 1, 1)     # cycle ratio (3+1)/(1+1) = 2
    >>> solve_mcrp(g, "karp").ratio
    Fraction(2, 1)
    >>> solve_mcrp(g, "hybrid").ratio == solve_mcrp(g, "bellman").ratio
    True
    """
    info = get_engine(engine) if isinstance(engine, str) else engine
    if decompose and info.supports_scc:
        from repro.mcrp.decompose import max_cycle_ratio_sccs

        return max_cycle_ratio_sccs(
            graph, engine=info, lower_bound=lower_bound
        )
    if info.supports_lower_bound and lower_bound is not None:
        return info.solve(graph, lower_bound=lower_bound)
    return info.solve(graph)
