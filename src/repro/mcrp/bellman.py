"""Positive-cycle detection for parametrized arc weights ``L − λ·H``.

This is the inner oracle of every ratio engine: for a candidate ratio λ,
the maximum cycle ratio exceeds λ iff the graph has a cycle of positive
weight under ``w(e) = L(e) − λ·H(e)``.

All arithmetic is **exact**: the compiled graph scales the
Fraction-valued ``(L, H)`` pairs to integers once by the lcm ``D`` of
their denominators, and a rational candidate ``λ = a/b`` turns the
weight test into the integer test ``b·L' − a·H' > 0``. Python's
arbitrary-precision ints make overflow impossible; when the compiled
core's integer fast path applies (scaled values fit ``int64``), the
parametric weights are formed vectorized in numpy instead of a Python
list comprehension.

The finder is a queue-based Bellman-Ford (SPFA) computing longest paths
from an implicit super-source (all distances start at 0): a node relaxed
more than ``n`` times certifies a positive cycle, which is extracted from
the predecessor chain.

The module also hosts the ``bellman`` registry engine: ascending ratio
iteration driven purely by the reference Python relaxation — the
slow-but-transparent baseline every fast path is validated against.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import List, Optional, Tuple

try:  # optional numpy fast path for the Jacobi relaxation sweeps
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI
    _np = None

from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.registry import register_engine


class ScaledGraph:
    """Integer-scaled view of a :class:`BiValuedGraph`.

    ``cost[i] = L_i·D`` and ``transit[i] = H_i·D`` where ``D`` is the lcm of
    all L/H denominators; cycle ratios are unchanged by the common scaling.
    Since the compiled-core refactor this is a thin adapter over
    ``graph.compile()`` — construction is O(1) after the first compile of
    the same graph.
    """

    def __init__(self, graph: BiValuedGraph):
        compiled = graph.compile()
        self.graph = graph
        self.compiled = compiled
        self.node_count = compiled.node_count
        self.scale = compiled.scale
        self.cost: List[int] = compiled.cost
        self.transit: List[int] = compiled.transit
        self.arc_src = compiled.src
        self.arc_dst = compiled.dst
        self.out_arcs = compiled.out_arcs

    def cycle_ratio(self, arc_indices: List[int]) -> Tuple[int, int]:
        """``(Σ cost, Σ transit)`` of a cycle, in scaled integers.

        The exact ratio is ``Fraction(Σ cost, Σ transit)`` — the scale
        cancels.
        """
        total_cost = sum(self.cost[i] for i in arc_indices)
        total_transit = sum(self.transit[i] for i in arc_indices)
        return total_cost, total_transit


def find_positive_cycle(
    scaled: ScaledGraph,
    lam_num: int,
    lam_den: int,
) -> Optional[List[int]]:
    """A cycle with ``Σ(L − λH) > 0`` at ``λ = lam_num/lam_den``, or None.

    Returns the cycle as a list of arc indices (an elementary cycle).
    ``lam_den`` must be positive.
    """
    if lam_den <= 0:
        raise ValueError("lam_den must be positive")
    compiled = scaled.compiled
    # Integer fast path: form the parametric weights vectorized and go
    # straight to the Jacobi sweep when the weight magnitudes provably
    # keep every ≤(3n+2)-arc walk sum inside int64. λ's own numerator
    # and denominator must fit int64 *independently* of the weight
    # bound: an all-zero cost (or transit) column zeroes its term of
    # the bound while the numpy scalar conversion still sees the raw
    # huge integer.
    jacobi_declined = False
    if (
        compiled.node_count >= 64
        and -(1 << 62) < lam_num < (1 << 62)
        and lam_den < (1 << 62)
        and compiled.ensure_numpy()
        and compiled.np_cost is not None
    ):
        bound = compiled.parametric_weight_bound(lam_num, lam_den)
        if bound < (1 << 62) // (3 * compiled.node_count + 4):
            w_np = lam_den * compiled.np_cost - lam_num * compiled.np_transit
            outcome = _find_cycle_numpy(scaled, w_np)
            if outcome is not _FALLBACK:
                return outcome
            jacobi_declined = True
    weights = compiled.parametric_weights(lam_num, lam_den)
    if jacobi_declined:
        # the Jacobi sweep already ran on these exact weights and could
        # not settle; go straight to the queue-based engine
        return _find_positive_weight_cycle_python(scaled, weights)
    # The precomputed bound is cancellation-free (b·maxL + |a|·maxH), so
    # near-critical weights can still be small when it overflows: let
    # the dispatching finder re-measure the actual weights and keep its
    # numpy shot where they fit.
    return find_positive_weight_cycle(scaled, weights)


def find_positive_weight_cycle(
    scaled: ScaledGraph,
    weights: List[int],
) -> Optional[List[int]]:
    """An elementary cycle of positive total ``weights``-value, or None.

    Dispatches to a vectorized Jacobi sweep when numpy is available, the
    instance is big enough to profit, and every possible path sum fits
    int64; otherwise (or if the fast path cannot certify within its pass
    budget) falls back to the exact queue-based relaxation below. Both
    halves only ever return *verified* positive cycles, so the dispatch
    cannot affect correctness.
    """
    if _np is not None and scaled.node_count >= 64:
        outcome = _find_cycle_numpy(scaled, weights)
        if outcome is not _FALLBACK:
            return outcome
    return _find_positive_weight_cycle_python(scaled, weights)


_FALLBACK = object()


def _find_cycle_numpy(scaled: ScaledGraph, weights):
    """Jacobi longest-path sweeps in numpy (int64).

    ``dist_k`` after k sweeps equals the best ≤k-arc walk value from the
    all-zero source, so stabilization within ``n`` sweeps proves there
    is no positive cycle; an improvement at sweep ``n+1`` proves there
    is one. Extraction walks the predecessor pointers recorded during
    the extra sweeps (predecessor-graph cycles have weight ≥ 0; strict
    positivity is verified, and the positive cycle pumps itself into
    the pointers within a bounded number of extra sweeps — after the
    budget, fall back to the exact queue engine).

    ``weights`` may be a Python list (bounds are then checked here) or a
    ready int64 array whose walk sums the caller already proved safe.
    The destination-sorted segment structure comes precomputed from the
    compiled core.
    """
    compiled = scaled.compiled
    n = compiled.node_count
    m = compiled.arc_count
    if m == 0:
        return None
    if not compiled.ensure_numpy():  # pragma: no cover - numpy gated above
        return _FALLBACK
    if isinstance(weights, list):
        max_w = max(1, max(abs(w) for w in weights))
        # every dist value is a ≤(3n+2)-arc walk sum; keep far from 2^63
        if max_w >= (1 << 62) // (3 * n + 4):
            return _FALLBACK
        w = _np.array(weights, dtype=_np.int64)
    else:
        w = weights
    src_s = compiled.src_sorted
    w_s = w[compiled.dst_order]
    arc_ids = compiled.arc_ids_sorted
    dst_unique = compiled.dst_unique
    seg_starts = compiled.seg_starts
    seg_sizes = compiled.seg_sizes

    dist = _np.zeros(n, dtype=_np.int64)
    pred = _np.full(n, -1, dtype=_np.int64)
    positions = _np.arange(m, dtype=_np.int64)
    last_improved: Optional[_np.ndarray] = None

    max_sweeps = 3 * n + 2
    for sweep in range(max_sweeps):
        cand = dist[src_s] + w_s
        seg_best = _np.maximum.reduceat(cand, seg_starts)
        improved = seg_best > dist[dst_unique]
        if not improved.any():
            return None
        # record predecessors (first arc achieving the segment max)
        best_rep = _np.repeat(seg_best, seg_sizes)
        hit_pos = _np.where(cand == best_rep, positions, m)
        first_hit = _np.minimum.reduceat(hit_pos, seg_starts)
        touched = dst_unique[improved]
        dist[touched] = seg_best[improved]
        pred[touched] = arc_ids[first_hit[improved]]
        last_improved = touched
        # Extraction may succeed long before the n-sweep existence proof
        # (the positive cycle pumps itself into the pointers early);
        # attempts are cheap (one pointer walk) and verified, so probe
        # periodically.
        if sweep & 15 == 15 or sweep >= n:
            cycle = _extract_pred_cycle_array(
                scaled, pred, int(last_improved[0]), w
            )
            if cycle is not None:
                return cycle
    return _FALLBACK  # positive cycle exists but pointers never settled


def _extract_pred_cycle_array(
    scaled: ScaledGraph,
    pred,
    start: int,
    weights,
) -> Optional[List[int]]:
    """Predecessor-chain walk over the numpy pred array (verified)."""
    seen_at = {}
    chain_arcs: List[int] = []
    node = start
    while node not in seen_at:
        seen_at[node] = len(chain_arcs)
        arc = int(pred[node])
        if arc < 0:
            return None
        chain_arcs.append(arc)
        node = scaled.arc_src[arc]
    first = seen_at[node]
    cycle_arcs = chain_arcs[first:]
    cycle_arcs.reverse()
    if sum(weights[a] for a in cycle_arcs) <= 0:
        return None
    return cycle_arcs


def _find_positive_weight_cycle_python(
    scaled: ScaledGraph,
    weights: List[int],
) -> Optional[List[int]]:
    """Exact queue-based engine (reference implementation).

    Queue-based longest-path relaxation from an all-zero start. Soundness
    of the two halves:

    * *absence*: without a positive cycle the relaxation quiesces (each
      round raises distances toward the finite max-walk fixpoint), so an
      emptied queue proves there is none;
    * *presence*: a predecessor-graph cycle always has total weight ≥ 0
      (each arc satisfies ``dist[dst] ≤ dist[src] + w`` once ``src`` may
      have been re-relaxed), so any extracted cycle is *verified* before
      being returned; while a positive cycle pumps the distances its arcs
      become the latest predecessors of its nodes, so repeated extraction
      attempts (triggered by walk-length overflow ``plen > n`` or by a
      relaxation budget no positive-cycle-free run can exhaust) find it.

    Extraction attempts that surface a zero-weight predecessor cycle or a
    broken chain are simply dropped and the search continues — they prove
    nothing either way.
    """
    n = scaled.node_count
    if n == 0:
        return None
    dist = [0] * n
    pred_arc: List[Optional[int]] = [None] * n
    plen = [0] * n  # arcs in the walk realizing dist[v]
    in_queue = [True] * n
    queue = deque(range(n))
    arc_dst = scaled.arc_dst
    out_arcs = scaled.out_arcs

    relaxations = 0
    # Without a positive cycle, queue-based BF performs at most ~n·m
    # relaxations; exceeding this certifies a positive cycle exists and
    # switches the loop into extraction mode unconditionally.
    m = max(1, len(weights))
    budget = 2 * n * m + 64
    attempts = 0
    max_attempts = 10 * n + 1000

    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = dist[u]
        pu = plen[u]
        for arc in out_arcs[u]:
            w = weights[arc]
            v = arc_dst[arc]
            candidate = du + w
            if candidate > dist[v]:
                dist[v] = candidate
                pred_arc[v] = arc
                plen[v] = pu + 1
                relaxations += 1
                if plen[v] > n or relaxations > budget:
                    cycle = _extract_pred_cycle(scaled, pred_arc, v, weights)
                    if cycle is not None:
                        return cycle
                    plen[v] = 0
                    attempts += 1
                    if attempts > max_attempts:  # pragma: no cover
                        raise RuntimeError(
                            "positive cycle certified but not extracted; "
                            "please report this graph"
                        )
                if not in_queue[v]:
                    in_queue[v] = True
                    queue.append(v)
    return None


def _extract_pred_cycle(
    scaled: ScaledGraph,
    pred_arc: List[Optional[int]],
    start: int,
    weights: List[int],
) -> Optional[List[int]]:
    """A *strictly positive* cycle from the predecessor graph, or None.

    Walks the chain from ``start``; a repeat closes a candidate cycle,
    whose weight is verified (predecessor cycles are ≥ 0 but can be 0).
    """
    seen_at = {}
    chain_nodes: List[int] = []
    chain_arcs: List[int] = []
    node = start
    while node not in seen_at:
        seen_at[node] = len(chain_nodes)
        chain_nodes.append(node)
        arc = pred_arc[node]
        if arc is None:
            return None  # chain reached an un-relaxed node: no cycle here
        chain_arcs.append(arc)
        node = scaled.arc_src[arc]
    first = seen_at[node]
    cycle_arcs = chain_arcs[first:]
    cycle_arcs.reverse()  # forward (source -> dest) order
    if sum(weights[a] for a in cycle_arcs) <= 0:
        return None
    return cycle_arcs


def has_positive_cycle(scaled: ScaledGraph, lam: Fraction) -> bool:
    """Convenience wrapper taking the candidate ratio as a Fraction."""
    return find_positive_cycle(scaled, lam.numerator, lam.denominator) is not None


def certify_zero_ratio(scaled: ScaledGraph) -> Optional[List[int]]:
    """Certificate handling for a converged ratio ``λ* ≤ 0`` (costs ≥ 0).

    Precondition: the graph has no positive cycle at λ = 0, i.e. every
    cycle has zero total cost. Then exactly one of three cases holds:

    * some cycle has positive transit → it is critical with ratio 0
      (returned);
    * some cycle has negative transit → no positive period satisfies the
      constraints (:class:`~repro.exceptions.DeadlockError`);
    * every cycle is vacuous (``L = 0, H = 0``) or the graph is acyclic →
      no binding period constraint (``None`` returned).
    """
    from repro.exceptions import DeadlockError, SolverError

    # Deadlock first: a zero-cost negative-transit cycle forbids every
    # positive period even when other cycles would certify ratio 0.
    negative = find_positive_weight_cycle(
        scaled, [-t for t in scaled.transit]
    )
    if negative is not None:
        raise DeadlockError(
            "zero-cost cycle with negative transit: "
            "no positive period exists (deadlock)",
            cycle_nodes=[scaled.arc_src[a] for a in negative],
        )
    positive = find_positive_weight_cycle(scaled, list(scaled.transit))
    if positive is not None:
        cost, transit = scaled.cycle_ratio(positive)
        if cost > 0:  # pragma: no cover - contradicts the precondition
            raise SolverError("positive-cost cycle survived the λ=0 pass")
        return positive
    return None


def find_any_cycle(scaled: ScaledGraph) -> Optional[List[int]]:
    """Any elementary cycle of the digraph (arc indices), or None.

    Iterative DFS with colouring; used as a fallback certificate when the
    maximum cycle ratio is 0 (every cycle is then critical).
    """
    n = scaled.node_count
    WHITE, GREY, BLACK = 0, 1, 2
    colour = [WHITE] * n
    entered_by: List[Optional[int]] = [None] * n
    for root in range(n):
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, arc_pos = stack[-1]
            arcs = scaled.out_arcs[node]
            moved = False
            while arc_pos < len(arcs):
                arc = arcs[arc_pos]
                arc_pos += 1
                nxt = scaled.arc_dst[arc]
                if colour[nxt] == GREY:
                    # Found a back arc: unwind the grey stack into a cycle.
                    cycle = [arc]
                    cursor = node
                    while cursor != nxt:
                        incoming = entered_by[cursor]
                        assert incoming is not None
                        cycle.append(incoming)
                        cursor = scaled.arc_src[incoming]
                    cycle.reverse()
                    return cycle
                if colour[nxt] == WHITE:
                    stack[-1] = (node, arc_pos)
                    colour[nxt] = GREY
                    entered_by[nxt] = arc
                    stack.append((nxt, 0))
                    moved = True
                    break
            if moved:
                continue
            stack.pop()
            colour[node] = BLACK
    return None


# ----------------------------------------------------------------------
def _python_oracle(
    scaled: ScaledGraph, lam_num: int, lam_den: int
) -> Optional[List[int]]:
    """Positive-cycle oracle pinned to the reference Python relaxation."""
    weights = scaled.compiled.parametric_weights(lam_num, lam_den)
    return _find_positive_weight_cycle_python(scaled, weights)


@register_engine(
    "bellman",
    supports_lower_bound=True,
    summary="ascending iteration on the pure-Python Bellman-Ford oracle "
            "(reference baseline, no vectorized fast paths)",
)
def max_cycle_ratio_bellman(
    graph: BiValuedGraph,
    *,
    lower_bound: Optional[Fraction] = None,
) -> CycleResult:
    """Exact λ* via ratio iteration over the queue-based Python oracle.

    Identical contract (and results) to
    :func:`repro.mcrp.max_cycle_ratio`; only the oracle implementation
    differs — this engine never touches the numpy Jacobi sweep, which
    makes it the ground truth the vectorized paths are validated
    against, and a sane choice on tiny graphs where array setup
    dominates.
    """
    from repro.mcrp.ratio_iteration import max_cycle_ratio

    return max_cycle_ratio(
        graph, lower_bound=lower_bound, oracle=_python_oracle
    )
