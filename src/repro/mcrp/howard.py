"""Howard policy iteration for the maximum cycle ratio (fast path).

Policy iteration runs in floats for speed; the value it converges to is
then **certified exactly**: the policy cycle's exact rational ratio is a
true cycle ratio (hence a valid lower bound), and the exact ascending
ratio iteration is started from it. On well-behaved graphs the ascending
phase terminates after a single no-op Bellman-Ford pass, so the overall
cost is Howard's float iterations plus one exact certification sweep.

The float phase reads the compiled core's precomputed shadow weights
(``cost_float``/``transit_float``) — no per-call Fraction-to-float
conversion — and sums candidate cycles in scaled integers.

Howard's method assumes cycles have positive transit; graphs violating
that (deadlocks) are caught by the exact phase, never mis-certified.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro.mcrp.graph import BiValuedGraph, CycleResult
from repro.mcrp.ratio_iteration import max_cycle_ratio
from repro.mcrp.registry import register_engine

_EPS = 1e-9


@register_engine(
    "howard",
    float_prefilter=True,
    supports_lower_bound=True,
    summary="float Howard policy iteration, certified by the exact "
            "ascending engine",
)
def max_cycle_ratio_howard(
    graph: BiValuedGraph,
    *,
    max_policy_iterations: int = 200,
    lower_bound: Optional[Fraction] = None,
) -> CycleResult:
    """Exact maximum cycle ratio, accelerated by a float Howard phase.

    Semantics are identical to :func:`repro.mcrp.max_cycle_ratio` (the
    exact engine always has the last word); only performance differs.
    ``lower_bound`` must be a certified cycle ratio (or any sound lower
    bound); it is combined with Howard's own hint.
    """
    hint = _howard_float_hint(graph, max_policy_iterations)
    if lower_bound is not None and (hint is None or lower_bound > hint):
        hint = Fraction(lower_bound)
    result = max_cycle_ratio(graph, lower_bound=hint)
    return result


def _howard_float_hint(
    graph: BiValuedGraph,
    max_policy_iterations: int,
) -> Optional[Fraction]:
    """Best *exact* cycle ratio reachable by float policy iteration.

    Returns None when no usable policy cycle is found (e.g. acyclic
    graphs); any returned value is the exact ratio of a real cycle and is
    therefore a sound lower bound for the ascending exact engine.

    (The ``hybrid`` engine runs its own *vectorized* variant of this
    phase — see :mod:`repro.mcrp.hybrid`; this loop is the transparent
    reference implementation.)
    """
    n = graph.node_count
    if n == 0 or graph.arc_count == 0:
        return None
    compiled = graph.compile()
    cost_f = compiled.cost_float
    transit_f = compiled.transit_float
    cost_i = compiled.cost
    transit_i = compiled.transit
    out_arcs = compiled.out_arcs
    arc_dst = compiled.dst

    # Initial policy: for each node with successors, arc of max cost.
    policy: List[Optional[int]] = [None] * n
    for v in range(n):
        if out_arcs[v]:
            policy[v] = max(out_arcs[v], key=lambda a: cost_f[a])

    best_exact: Optional[Fraction] = None
    lam = 0.0
    for _ in range(max_policy_iterations):
        cycle = _policy_cycle(graph, policy)
        if cycle is None:
            break
        num = sum(cost_i[a] for a in cycle)
        den = sum(transit_i[a] for a in cycle)
        if den <= 0:
            # Deadlock-shaped policy cycle: leave it to the exact engine.
            break
        exact = Fraction(num, den)  # the common scale cancels
        if best_exact is None or exact > best_exact:
            best_exact = exact
        lam = float(exact)
        values = _policy_values(graph, policy, cycle, lam, cost_f, transit_f)
        improved = False
        for v in range(n):
            best_arc = policy[v]
            if best_arc is None:
                continue
            best_val = (
                cost_f[best_arc]
                - lam * transit_f[best_arc]
                + values[arc_dst[best_arc]]
            )
            for a in out_arcs[v]:
                cand = cost_f[a] - lam * transit_f[a] + values[arc_dst[a]]
                if cand > best_val + _EPS:
                    best_val = cand
                    policy[v] = a
                    improved = True
        if not improved:
            break
    return best_exact


def _policy_cycle(
    graph: BiValuedGraph,
    policy: List[Optional[int]],
) -> Optional[List[int]]:
    """Any cycle of the functional policy graph (arc indices), or None."""
    cycles = policy_cycles(graph.compile().dst, policy)
    return cycles[0] if cycles else None


def policy_cycles(arc_dst, policy) -> List[List[int]]:
    """Every cycle of a functional policy graph (arc-index lists).

    ``policy[v]`` is the chosen out-arc of ``v`` (``None`` or a negative
    value marks "no arc"). A functional graph has at most one cycle per
    weakly connected component; one chase per unvisited node finds them
    all in O(n). Shared by the reference Howard engine and the hybrid
    engine's vectorized prefilter.
    """
    n = len(policy)
    state = [0] * n  # 0 unvisited, 1 in current chain, 2 done
    cycles: List[List[int]] = []
    for root in range(n):
        if state[root] != 0:
            continue
        chain: List[int] = []
        node = root
        while True:
            if state[node] == 1:
                # Found a cycle: trim the chain prefix before `node`.
                idx = chain.index(node)
                cycles.append([policy[v] for v in chain[idx:]])
                break
            arc = policy[node]
            if state[node] == 2 or arc is None or arc < 0:
                break
            state[node] = 1
            chain.append(node)
            node = arc_dst[arc]
        for v in chain:
            state[v] = 2
    return cycles


def _policy_values(
    graph: BiValuedGraph,
    policy: List[Optional[int]],
    cycle: List[int],
    lam: float,
    cost_f: List[float],
    transit_f: List[float],
) -> List[float]:
    compiled = graph.compile()
    return policy_values(
        compiled.src, compiled.dst, policy, cycle, lam, cost_f, transit_f
    )


def policy_values(
    arc_src,
    arc_dst,
    policy,
    cycle: List[int],
    lam: float,
    cost_f,
    transit_f,
) -> List[float]:
    """Float node potentials for a policy at ratio ``lam``.

    Nodes on the reference cycle get value 0 at the cycle entry and are
    propagated along the cycle; every node whose policy path reaches the
    evaluated region is solved by reverse topological relaxation
    (iterative, bounded passes — floats only need to be good enough to
    steer the policy, exactness comes later). ``policy`` marks "no arc"
    with ``None`` or a negative value; shared by the reference Howard
    engine and the hybrid engine's vectorized prefilter.
    """
    n = len(policy)
    values = [0.0] * n
    known = [False] * n
    node = arc_src[cycle[0]]
    values[node] = 0.0
    known[node] = True
    acc = 0.0
    for arc in cycle[:-1]:
        acc += cost_f[arc] - lam * transit_f[arc]
        nxt = arc_dst[arc]
        values[nxt] = acc
        known[nxt] = True
    # Propagate to the rest of the policy tree by chasing each node's
    # successor chain once (the policy graph is functional, so this is
    # O(n) total): unwind the visited chain when a known value — or a
    # foreign cycle, valued 0 as a neutral anchor — is reached.
    def has_arc(v):
        arc = policy[v]
        return arc is not None and arc >= 0

    for start in range(n):
        if known[start] or not has_arc(start):
            continue
        chain = []
        on_chain = set()
        v = start
        while not known[v] and has_arc(v) and v not in on_chain:
            chain.append(v)
            on_chain.add(v)
            v = arc_dst[policy[v]]
        if not known[v]:
            # dead end or a second policy cycle: anchor at 0.
            values[v] = 0.0
            known[v] = True
            if chain and chain[-1] == v:
                chain.pop()
        for u in reversed(chain):
            arc = policy[u]
            values[u] = (
                cost_f[arc] - lam * transit_f[arc]
                + values[arc_dst[arc]]
            )
            known[u] = True
    return values
