"""Frozen arc-array (CSR) form of a bi-valued graph: the solver core.

Every MCRP engine ultimately loops over arcs, so the hot-path data
layout matters more than the algorithm's constant factor. A
:class:`CompiledGraph` freezes a :class:`~repro.mcrp.graph.BiValuedGraph`
into struct-of-arrays form, computed **once** and shared by every
oracle call, engine, SCC sweep and longest-path pass on that graph:

* ``src``/``dst`` — dense arc endpoint lists plus ``indptr``/``csr_arcs``
  (CSR by source: the out-arcs of ``v`` are
  ``csr_arcs[indptr[v]:indptr[v+1]]``);
* ``cost``/``transit`` — the exact ``(L, H)`` values scaled to integers
  by the lcm ``scale`` of all denominators (cycle ratios are invariant
  under common scaling; Python ints make overflow impossible);
* an **integer fast path**: when the scaled values fit ``int64``,
  numpy mirrors ``np_cost``/``np_transit`` let the positive-cycle
  oracle form the parametric weights ``b·L − a·H`` vectorized;
* **float shadow weights** ``cost_float``/``transit_float`` computed
  once for the float prefilter engines (Howard, hybrid);
* the destination-sorted segment structure the numpy Jacobi relaxation
  needs (previously re-``argsort``-ed on every oracle call).

Compilation is cached on the source graph (see
:meth:`BiValuedGraph.compile`) and invalidated by mutation, so the
typical solve pipeline — build constraint graph, probe, decompose,
iterate — compiles exactly once per graph.
"""

from __future__ import annotations

from array import array
from typing import Hashable, List, Optional, Sequence, Tuple

try:  # optional vectorized fast paths
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI
    _np = None

_INT64_MAX = (1 << 63) - 1


class CompiledGraph:
    """Immutable arc-array view of a bi-valued graph.

    Instances are produced by :func:`compile_graph` (usually via
    ``BiValuedGraph.compile()``); treat every attribute as read-only.

    Examples
    --------
    >>> from fractions import Fraction
    >>> from repro.mcrp.graph import BiValuedGraph
    >>> g = BiValuedGraph(2)
    >>> _ = g.add_arc(0, 1, 3, Fraction(1, 2))
    >>> _ = g.add_arc(1, 0, 1, Fraction(1, 2))
    >>> c = g.compile()
    >>> c.scale, c.cost, c.transit
    (2, [6, 2], [1, 1])
    >>> c.integral
    False
    >>> list(c.out_arcs_of(0))
    [0]
    """

    __slots__ = (
        "node_count", "arc_count", "labels",
        "src", "dst", "indptr", "csr_arcs", "out_arcs",
        "scale", "cost", "transit", "integral", "has_negative_cost",
        "max_abs_cost", "max_abs_transit",
        "cost_float", "transit_float",
        "_numpy_built",
        "np_src", "np_dst", "np_cost", "np_transit",
        "np_cost_float", "np_transit_float",
        "np_indptr", "np_csr_arcs",
        "src_unique", "src_seg_starts", "src_seg_sizes",
        "dst_order", "src_sorted", "arc_ids_sorted",
        "dst_unique", "seg_starts", "seg_sizes",
    )

    def __init__(
        self,
        node_count: int,
        labels: Sequence[Hashable],
        src: List[int],
        dst: List[int],
        scale: int,
        cost: List[int],
        transit: List[int],
        out_arcs: Sequence[Sequence[int]],
    ):
        self.node_count = node_count
        self.arc_count = len(src)
        self.labels = labels
        self.src = src
        self.dst = dst
        self.scale = scale
        self.cost = cost
        self.transit = transit
        self.integral = scale == 1
        self.has_negative_cost = any(c < 0 for c in cost)
        self.max_abs_cost = max((abs(c) for c in cost), default=0)
        self.max_abs_transit = max((abs(t) for t in transit), default=0)
        inv = 1.0 / scale
        self.cost_float = [c * inv for c in cost]
        self.transit_float = [t * inv for t in transit]

        # CSR by source + plain adjacency lists (the pure-python inner
        # loops index lists faster than typed arrays); the caller hands
        # us the adjacency it already maintains — freeze, don't rebuild.
        self.out_arcs: Tuple[List[int], ...] = tuple(
            list(arcs) for arcs in out_arcs
        )
        indptr = array("q", [0] * (node_count + 1))
        csr = array("q", [0] * self.arc_count)
        pos = 0
        for v, arcs in enumerate(self.out_arcs):
            indptr[v + 1] = indptr[v] + len(arcs)
            for arc in arcs:
                csr[pos] = arc
                pos += 1
        self.indptr = indptr
        self.csr_arcs = csr

        # numpy mirrors are built lazily (ensure_numpy): the vectorized
        # consumers only engage above ~64 nodes, and plenty of compiled
        # graphs (early K-Iter rounds, converters) never get there.
        self._numpy_built = False
        self.np_src = self.np_dst = self.np_cost = self.np_transit = None
        self.np_cost_float = self.np_transit_float = None
        self.np_indptr = self.np_csr_arcs = None
        self.src_unique = self.src_seg_starts = self.src_seg_sizes = None
        self.dst_order = self.src_sorted = self.arc_ids_sorted = None
        self.dst_unique = self.seg_starts = self.seg_sizes = None

    # ------------------------------------------------------------------
    def ensure_numpy(self) -> bool:
        """Build (once) the numpy mirrors and sorted segment structures.

        Returns False when numpy is unavailable or the graph has no
        arcs; ``np_cost``/``np_transit`` additionally stay ``None`` when
        the scaled weights overflow ``int64`` (the integer fast path is
        then soundly disabled while the float/topology mirrors remain).
        """
        if self._numpy_built:
            return self.np_src is not None
        self._numpy_built = True
        if _np is None or not self.arc_count:
            return False
        self.np_src = _np.array(self.src, dtype=_np.int64)
        self.np_dst = _np.array(self.dst, dtype=_np.int64)
        if (
            self.max_abs_cost < _INT64_MAX
            and self.max_abs_transit < _INT64_MAX
        ):
            self.np_cost = _np.array(self.cost, dtype=_np.int64)
            self.np_transit = _np.array(self.transit, dtype=_np.int64)
        self.np_cost_float = _np.array(self.cost_float, dtype=_np.float64)
        self.np_transit_float = _np.array(
            self.transit_float, dtype=_np.float64
        )
        # CSR mirrors + nonempty source segments (for vectorized
        # per-source reductions, e.g. Howard policy improvement)
        self.np_indptr = _np.frombuffer(self.indptr, dtype=_np.int64).copy()
        self.np_csr_arcs = _np.frombuffer(
            self.csr_arcs, dtype=_np.int64
        ).copy()
        degrees = _np.diff(self.np_indptr)
        nonempty = degrees > 0
        self.src_unique = _np.nonzero(nonempty)[0]
        self.src_seg_starts = self.np_indptr[:-1][nonempty]
        self.src_seg_sizes = degrees[nonempty]
        order = _np.argsort(self.np_dst, kind="stable")
        self.dst_order = order
        self.src_sorted = self.np_src[order]
        self.arc_ids_sorted = _np.arange(
            self.arc_count, dtype=_np.int64
        )[order]
        dst_sorted = self.np_dst[order]
        self.dst_unique, self.seg_starts = _np.unique(
            dst_sorted, return_index=True
        )
        self.seg_sizes = _np.diff(
            _np.append(self.seg_starts, self.arc_count)
        )
        return True

    # ------------------------------------------------------------------
    def out_arcs_of(self, node: int) -> List[int]:
        """Arc indices leaving ``node`` (CSR slice)."""
        return self.out_arcs[node]

    def parametric_weights(self, lam_num: int, lam_den: int) -> List[int]:
        """Exact integer weights ``lam_den·L' − lam_num·H'`` per arc.

        A cycle is positive under these weights iff its ratio exceeds
        ``lam_num/lam_den`` (the common factor ``lam_den·scale`` is
        positive and cancels).
        """
        cost, transit = self.cost, self.transit
        return [
            lam_den * cost[i] - lam_num * transit[i]
            for i in range(self.arc_count)
        ]

    def parametric_weight_bound(self, lam_num: int, lam_den: int) -> int:
        """Upper bound on ``|parametric_weights(...)|`` without forming them."""
        return (
            lam_den * self.max_abs_cost
            + abs(lam_num) * self.max_abs_transit
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledGraph(nodes={self.node_count}, arcs={self.arc_count}, "
            f"scale={self.scale}, integral={self.integral})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_int64_arrays(
        cls,
        node_count: int,
        labels: Sequence[Hashable],
        src,
        dst,
        scale: int,
        cost,
        transit,
    ) -> "CompiledGraph":
        """Assemble a compiled graph directly from int64 numpy arc arrays.

        The arithmetic constructor of the direct K-expansion pipeline
        (and the SCC subgraph slicer): ``cost``/``transit`` are already
        the integer-scaled values for the given ``scale``, so no
        ``Fraction`` is ever created and the per-arc Python loop of
        ``__init__`` is replaced by vectorized CSR construction (stable
        argsort by source — per-node arc order is ascending arc index,
        exactly what incremental ``add_arc`` would have produced).

        ``labels`` may be any sequence (including a lazy view); it is
        stored as given, not copied.
        """
        if _np is None:  # pragma: no cover - callers gate on numpy
            raise RuntimeError("from_int64_arrays requires numpy")
        src = _np.ascontiguousarray(src, dtype=_np.int64)
        dst = _np.ascontiguousarray(dst, dtype=_np.int64)
        cost = _np.ascontiguousarray(cost, dtype=_np.int64)
        transit = _np.ascontiguousarray(transit, dtype=_np.int64)
        m = int(src.shape[0])

        self = cls.__new__(cls)
        self.node_count = node_count
        self.arc_count = m
        self.labels = labels
        self.src = src.tolist()
        self.dst = dst.tolist()
        self.scale = scale
        self.cost = cost.tolist()
        self.transit = transit.tolist()
        self.integral = scale == 1
        self.has_negative_cost = bool(m) and bool((cost < 0).any())
        self.max_abs_cost = int(_np.abs(cost).max()) if m else 0
        self.max_abs_transit = int(_np.abs(transit).max()) if m else 0
        inv = 1.0 / scale
        self.cost_float = (cost * inv).tolist()
        self.transit_float = (transit * inv).tolist()

        order = _np.argsort(src, kind="stable")
        counts = _np.bincount(src, minlength=node_count) if m else (
            _np.zeros(node_count, dtype=_np.int64)
        )
        indptr_np = _np.zeros(node_count + 1, dtype=_np.int64)
        _np.cumsum(counts, out=indptr_np[1:])
        indptr = array("q")
        indptr.frombytes(indptr_np.astype(_np.int64).tobytes())
        csr = array("q")
        csr.frombytes(order.astype(_np.int64).tobytes())
        self.indptr = indptr
        self.csr_arcs = csr
        order_list = order.tolist()
        indptr_list = indptr_np.tolist()
        self.out_arcs = tuple(
            order_list[indptr_list[v]:indptr_list[v + 1]]
            for v in range(node_count)
        )

        self._numpy_built = False
        self.np_src = self.np_dst = self.np_cost = self.np_transit = None
        self.np_cost_float = self.np_transit_float = None
        self.np_indptr = self.np_csr_arcs = None
        self.src_unique = self.src_seg_starts = self.src_seg_sizes = None
        self.dst_order = self.src_sorted = self.arc_ids_sorted = None
        self.dst_unique = self.seg_starts = self.seg_sizes = None
        return self


def compile_graph(graph) -> CompiledGraph:
    """Freeze ``graph`` (a :class:`BiValuedGraph`) into arc arrays.

    Prefer ``graph.compile()``, which caches the result until the graph
    is mutated.
    """
    from repro.utils.rational import lcm_list

    denominators = [c.denominator for c in graph.arc_cost]
    denominators += [h.denominator for h in graph.arc_transit]
    scale = lcm_list(denominators) if denominators else 1
    cost = [int(c * scale) for c in graph.arc_cost]
    transit = [int(h * scale) for h in graph.arc_transit]
    return CompiledGraph(
        node_count=graph.node_count,
        labels=list(graph.labels),
        src=list(graph.arc_src),
        dst=list(graph.arc_dst),
        scale=scale,
        cost=cost,
        transit=transit,
        out_arcs=graph._out,
    )
