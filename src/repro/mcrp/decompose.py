"""SCC decomposition for the MCRP: solve per component, prune by champion.

Cycles live inside strongly connected components, so

    λ*(G) = max over SCCs C of λ*(C)

and the critical circuit of the argmax component certifies the global
value. Decomposition pays twice:

* the positive-cycle oracle stops wasting relaxations pumping distances
  through the acyclic regions between components;
* once some component certified a champion ratio λ̂, every further
  component is first *probed* with one oracle call at λ̂ — no positive
  cycle there means it cannot beat the champion (and any deadlock
  circuit, which stays positive at every λ ≥ 0 when λ̂ > 0, would have
  shown up in the probe) — so the full engine only runs where it
  matters.

The probe-skip is sound only for λ̂ > 0: at λ̂ = 0 a zero-cost
negative-transit deadlock cycle is invisible, so such components are
always solved fully.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple, Union

try:  # numpy accelerates the subgraph slicing; optional
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.exceptions import DeadlockError
from repro.mcrp.bellman import ScaledGraph, find_positive_cycle
from repro.mcrp.graph import BiValuedGraph, CycleResult, FrozenBiValuedGraph
from repro.mcrp.ratio_iteration import max_cycle_ratio

#: Below this arc count the numpy subgraph slice costs more in array
#: round-trips than the plain Python copy it replaces.
_MIN_SLICE_ARCS = 256


def strongly_connected_node_sets(graph: BiValuedGraph) -> List[List[int]]:
    """Tarjan SCCs over the compiled CSR arc arrays (iterative), largest first.

    The sweep never touches Python adjacency *objects*: children are read
    straight from the compiled ``indptr``/``csr_arcs``/``dst`` arrays,
    which the graph's other consumers (oracle, potentials) share.
    """
    compiled = graph.compile()
    n = compiled.node_count
    indptr = compiled.indptr
    csr_arcs = compiled.csr_arcs
    arc_dst = compiled.dst
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]
    for root in range(n):
        if index[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, indptr[root])]
        while work:
            node, pos = work[-1]
            if pos == indptr[node]:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            end = indptr[node + 1]
            advanced = False
            while pos < end:
                child = arc_dst[csr_arcs[pos]]
                pos += 1
                if index[child] == -1:
                    work[-1] = (node, pos)
                    work.append((child, indptr[child]))
                    advanced = True
                    break
                if on_stack[child]:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    components.sort(key=len, reverse=True)
    return components


def _subgraph(
    graph: BiValuedGraph, nodes: List[int]
) -> Tuple[BiValuedGraph, List[int], List[int]]:
    """Induced subgraph + (local→global node map, local→global arc map)."""
    compiled = graph.compile()
    sliced = _subgraph_compiled(compiled, graph, nodes)
    if sliced is not None:
        return sliced
    indptr = compiled.indptr
    csr_arcs = compiled.csr_arcs
    arc_dst = compiled.dst
    local_of = {g: l for l, g in enumerate(nodes)}
    sub = BiValuedGraph(len(nodes), labels=[graph.labels[g] for g in nodes])
    arc_map: List[int] = []
    srcs: List[int] = []
    dsts: List[int] = []
    costs = []
    transits = []
    for g_node in nodes:
        src_local = local_of[g_node]
        for pos in range(indptr[g_node], indptr[g_node + 1]):
            arc = csr_arcs[pos]
            dst_local = local_of.get(arc_dst[arc])
            if dst_local is not None:
                srcs.append(src_local)
                dsts.append(dst_local)
                costs.append(graph.arc_cost[arc])
                transits.append(graph.arc_transit[arc])
                arc_map.append(arc)
    sub.extend_arcs(srcs, dsts, costs, transits)
    return sub, nodes, arc_map


def _subgraph_compiled(compiled, graph, nodes):
    """Fraction-free subgraph slice over the compiled int64 mirrors.

    Slices the parent's scaled integer arrays directly into a
    :meth:`~repro.mcrp.compiled.CompiledGraph.from_int64_arrays`-built
    compiled form wrapped in a
    :class:`~repro.mcrp.graph.FrozenBiValuedGraph` — no per-arc
    ``Fraction`` round trip, which on one-big-SCC constraint graphs
    (the typical shape: serialization loops connect every task's
    phases) used to re-materialize nearly every arc. The parent's scale
    is kept (possibly non-minimal for the component — cycle ratios are
    invariant under common scaling). Arc order matches the Python
    path: concatenated CSR out-slices in ``nodes`` order. Returns
    ``None`` when numpy/the int64 mirrors are unavailable or the graph
    is too small to pay for the array round-trips.
    """
    if (
        _np is None
        or compiled.arc_count < _MIN_SLICE_ARCS
        or not compiled.ensure_numpy()
        or compiled.np_cost is None
    ):
        return None
    node_arr = _np.asarray(nodes, dtype=_np.int64)
    local = _np.full(compiled.node_count, -1, dtype=_np.int64)
    local[node_arr] = _np.arange(node_arr.shape[0], dtype=_np.int64)
    indptr = compiled.np_indptr
    csr = compiled.np_csr_arcs
    candidates = _np.concatenate(
        [csr[indptr[g]:indptr[g + 1]] for g in nodes]
    ) if nodes else _np.empty(0, dtype=_np.int64)
    arcs = candidates[local[compiled.np_dst[candidates]] >= 0]
    sub_compiled = compiled.from_int64_arrays(
        node_count=node_arr.shape[0],
        labels=[graph.labels[g] for g in nodes],
        src=local[compiled.np_src[arcs]],
        dst=local[compiled.np_dst[arcs]],
        scale=compiled.scale,
        cost=compiled.np_cost[arcs],
        transit=compiled.np_transit[arcs],
    )
    return FrozenBiValuedGraph(sub_compiled), list(nodes), arcs.tolist()


def max_cycle_ratio_sccs(
    graph: BiValuedGraph,
    *,
    engine: Union[Callable[..., CycleResult], "EngineInfo"] = max_cycle_ratio,
    lower_bound: Optional[Fraction] = None,
    seed_lower_bound: Optional[bool] = None,
) -> CycleResult:
    """λ* by per-SCC solving with champion pruning.

    Same contract as :func:`repro.mcrp.max_cycle_ratio`; node/arc ids of
    the returned circuit refer to the *input* graph. ``engine`` may be a
    bare solve callable or a registry :class:`EngineInfo` — with an
    info, the per-component dispatch reads the engine's capabilities
    directly (today: whether to warm-start it with the champion).
    ``lower_bound`` (certified) seeds the champion used for probe
    pruning — which is sound for every engine — and, when
    ``seed_lower_bound`` resolves true (explicitly, from the info's
    ``supports_lower_bound`` capability, or by default for bare
    callables), also warm-starts each component's engine call.
    """
    from repro.mcrp.registry import EngineInfo

    if isinstance(engine, EngineInfo):
        if seed_lower_bound is None:
            seed_lower_bound = engine.supports_lower_bound
        engine = engine.solve
    elif seed_lower_bound is None:
        seed_lower_bound = True
    components = [
        c for c in strongly_connected_node_sets(graph)
        if len(c) > 1 or _has_self_arc(graph, c[0])
    ]
    if not components:
        return CycleResult(ratio=None)

    best: Optional[CycleResult] = None
    champion: Optional[Fraction] = lower_bound
    iterations = 0

    def solve_component(nodes: List[int]) -> None:
        nonlocal best, champion, iterations
        sub, node_map, arc_map = _subgraph(graph, nodes)
        try:
            if seed_lower_bound:
                result = engine(sub, lower_bound=champion)
            else:
                result = engine(sub)
        except DeadlockError as exc:
            if exc.cycle_nodes is not None:
                exc.cycle_nodes = [node_map[v] for v in exc.cycle_nodes]
            raise
        iterations += result.iterations
        if result.ratio is None:
            return
        if best is None or result.ratio > best.ratio:
            best = CycleResult(
                ratio=result.ratio,
                cycle_arcs=[arc_map[a] for a in result.cycle_arcs],
                cycle_nodes=[node_map[v] for v in result.cycle_nodes],
            )
            champion = result.ratio

    # The largest component usually holds the answer: solve it directly.
    solve_component(components[0])
    remaining = components[1:]
    component_of: Dict[int, int] = {}
    for idx, nodes in enumerate(components):
        for v in nodes:
            component_of[v] = idx

    while remaining:
        if champion is None or champion <= 0:
            # no pruning possible (rare: zero/absent champion)
            solve_component(remaining.pop(0))
            continue
        # One probe over the *union* of all remaining components: no
        # positive cycle at the champion means none can beat it (and no
        # deadlock hides there either, since deadlock cycles stay
        # positive at every λ > 0).
        union_nodes = [v for nodes in remaining for v in nodes]
        sub, node_map, _arc_map = _subgraph(graph, union_nodes)
        scaled = ScaledGraph(sub)
        probe = find_positive_cycle(
            scaled, champion.numerator, champion.denominator
        )
        iterations += 1
        if probe is None:
            break
        hit = component_of[node_map[sub.arc_src[probe[0]]]]
        remaining = [
            nodes for nodes in remaining
            if component_of[nodes[0]] != hit
        ]
        solve_component(components[hit])

    if best is None:
        # components existed but none yielded a ratio above the seed —
        # only possible when a lower_bound seed pruned everything; the
        # seed is certified, yet we owe the caller a circuit: re-solve
        # the largest component without pruning.
        sub, node_map, arc_map = _subgraph(graph, components[0])
        result = engine(sub)
        if result.ratio is None:  # pragma: no cover - component has cycles
            return CycleResult(ratio=None, iterations=iterations)
        return CycleResult(
            ratio=result.ratio,
            cycle_arcs=[arc_map[a] for a in result.cycle_arcs],
            cycle_nodes=[node_map[v] for v in result.cycle_nodes],
            iterations=iterations + result.iterations,
        )
    final = best
    final.iterations = iterations
    return final


def _has_self_arc(graph: BiValuedGraph, node: int) -> bool:
    return any(graph.arc_dst[a] == node for a in graph.out_arcs(node))
