"""Seeded random SDF categories mimicking Table 1's statistics.

* :func:`mimic_dsp` — "MimicDSP": small SDF graphs (3–25 tasks) with
  moderate rate heterogeneity, Σq up to ~10⁴;
* :func:`large_hsdf` — "LgHSDF": small graphs (6–15 tasks) whose rates
  make the **HSDF expansion** large (Σq up to ~2·10⁵) — the category
  where symbolic execution is two orders of magnitude slower;
* :func:`large_transient` — "LgTransient": homogeneous graphs (all rates
  1, so Σq = task count, 181–300 tasks) engineered for long self-timed
  transients: a slow global cycle fed by long token-starved chains.

All generators are deterministic in their seed and live by construction
(see :mod:`repro.generators._machinery`).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.generators._machinery import GraphSpec, random_q_vector
from repro.model.graph import CsdfGraph


def random_connected_sdf(
    seed: int,
    *,
    tasks: int,
    max_q: int = 12,
    extra_edge_ratio: float = 0.5,
    feedback_edges: int = 1,
    rate_scale_max: int = 3,
    duration_range=(1, 15),
    feedback_margin: int = 1,
    name: Optional[str] = None,
) -> CsdfGraph:
    """A connected, consistent, live random SDF graph.

    Backbone: a random spanning arborescence over a shuffled topological
    order, plus ``extra_edge_ratio·tasks`` forward edges and
    ``feedback_edges`` marked back edges closing throughput-relevant
    cycles.
    """
    rng = random.Random(seed)
    spec = GraphSpec(name or f"sdf_s{seed}", rng)
    q_values = random_q_vector(rng, tasks, max_q=max_q)
    for i, q in enumerate(q_values):
        spec.add_task(f"t{i}", q, phases=1, duration_range=duration_range)

    names = [f"t{i}" for i in range(tasks)]
    for i in range(1, tasks):
        parent = rng.randrange(i)
        spec.connect(
            names[parent], names[i], rate_scale=rng.randint(1, rate_scale_max)
        )
    extra = int(extra_edge_ratio * tasks)
    for _ in range(extra):
        i, j = rng.randrange(tasks), rng.randrange(tasks)
        if i == j:
            continue
        src, dst = (names[min(i, j)], names[max(i, j)])
        spec.connect(src, dst, rate_scale=rng.randint(1, rate_scale_max))
    for _ in range(feedback_edges):
        if tasks < 2:
            break
        j = rng.randrange(1, tasks)
        i = rng.randrange(j)
        spec.connect(names[j], names[i],
                     rate_scale=rng.randint(1, rate_scale_max),
                     iteration_margin=feedback_margin)
    return spec.build()


def mimic_dsp(seed: int) -> CsdfGraph:
    """One MimicDSP instance (Table 1 row 2): 3–25 tasks, Σq ≲ 10⁴."""
    rng = random.Random(seed * 2654435761 + 0x5D)
    tasks = rng.randint(3, 25)
    return random_connected_sdf(
        seed * 7919 + 13,
        tasks=tasks,
        max_q=120,
        extra_edge_ratio=0.4,
        feedback_edges=rng.randint(1, 2),
        rate_scale_max=3,
        feedback_margin=2,
        name=f"mimicdsp_{seed}",
    )


def large_hsdf(seed: int) -> CsdfGraph:
    """One LgHSDF instance (Table 1 row 3): few tasks, huge expansion.

    Rate heterogeneity is cranked up (coprime-ish q values up to ~60) so
    Σq lands in the 10²–10⁵ range of the paper's category.
    """
    rng = random.Random(seed * 104729 + 7)
    tasks = rng.randint(6, 15)
    spec = GraphSpec(f"lghsdf_{seed}", rng)
    primes = [1, 2, 3, 5, 7, 11, 13, 16, 27, 25, 49, 32]
    q_values = [primes[rng.randrange(len(primes))] *
                primes[rng.randrange(len(primes))] *
                rng.choice([1, 2, 4, 8]) for _ in range(tasks)]
    q_values[rng.randrange(tasks)] = 1
    for i, q in enumerate(q_values):
        spec.add_task(f"t{i}", q, phases=1, duration_range=(1, 8))
    names = [f"t{i}" for i in range(tasks)]
    for i in range(1, tasks):
        spec.connect(names[rng.randrange(i)], names[i])
    for _ in range(tasks // 2):
        i, j = sorted(rng.sample(range(tasks), 2))
        spec.connect(names[i], names[j])
    # one slack-marked feedback cycle through the whole chain: the
    # category's point is a *large expansion* (huge Σq), not a tight
    # cycle, so utilization dominates and exact methods that expand pay
    # the Σq bill while K-Iter certifies at K = 1.
    spec.connect(names[tasks - 1], names[0], iteration_margin=3)
    return spec.build()


def large_transient(seed: int) -> CsdfGraph:
    """One LgTransient instance (Table 1 row 4): HSDF, long transient.

    Structure: a marked global ring (the steady-state bottleneck) with
    long unmarked chains hanging between ring stations; tokens must
    percolate the chains before the steady state emerges, which is what
    makes as-soon-as-possible state search slow while the MCRP stays
    easy.
    """
    rng = random.Random(seed * 15485863 + 101)
    tasks = rng.randint(181, 300)
    spec = GraphSpec(f"lgtransient_{seed}", rng)
    for i in range(tasks):
        spec.add_task(f"t{i}", 1, phases=1, duration_range=(1, 40))
    names = [f"t{i}" for i in range(tasks)]
    stations = max(3, tasks // 70)
    station_ids = sorted(rng.sample(range(tasks), stations))
    chain_members = [i for i in range(tasks) if i not in set(station_ids)]
    # chains between consecutive stations
    per_chain = max(1, len(chain_members) // stations)
    cursor = 0
    for s in range(stations):
        a = station_ids[s]
        b = station_ids[(s + 1) % stations]
        chain = chain_members[cursor: cursor + per_chain]
        cursor += per_chain
        prev = a
        for m in chain:
            spec.connect(names[prev], names[m], tokens=0)
            prev = m
        # close into the next station; ring marking lives here
        spec.connect(names[prev], names[b],
                     tokens=2 if s == stations - 1 else 0)
    # leftovers dangle off random stations
    for m in chain_members[cursor:]:
        spec.connect(names[rng.choice(station_ids)], names[m], tokens=0)
    return spec.build()


def mimic_dsp_suite(count: int = 100) -> List[CsdfGraph]:
    return [mimic_dsp(i) for i in range(count)]


def large_hsdf_suite(count: int = 100) -> List[CsdfGraph]:
    return [large_hsdf(i) for i in range(count)]


def large_transient_suite(count: int = 100) -> List[CsdfGraph]:
    return [large_transient(i) for i in range(count)]
