"""The paper's own example graphs (Figures 1 and 2).

Figure 2 caveat (documented in ``DESIGN.md``): the extracted rate vectors
are mutually consistent and give the minimal repetition vector
``q = [3, 4, 6, 1]`` for ``A, B, C, D``, while the prose claims
``[6, 12, 6, 1]``. All five balance equations hold for the former and none
for the latter, so we keep the figure's rates. The initial markings on the
``C→A``/``A→D``/``D→C`` arcs (4, 13, 6) are also from the figure; they
make the graph live.
"""

from __future__ import annotations

from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task


def figure1_buffer() -> CsdfGraph:
    """Figure 1: one buffer, producer ``t`` (3 phases), consumer ``t'``.

    ``in_b = [2,3,1]``, ``out_b = [2,5]``, ``M0 = 0`` — the running
    single-buffer example (``i_b = 6``, ``o_b = 7``). Unit durations are
    assumed (the figure leaves them unspecified).
    """
    g = CsdfGraph("figure1")
    g.add_task(Task("t", (1, 1, 1)))
    g.add_task(Task("t2", (1, 1)))
    g.add_buffer(Buffer("b", "t", "t2", (2, 3, 1), (2, 5), 0))
    return g


def figure2_graph() -> CsdfGraph:
    """Figure 2: the paper's running 4-task CSDFG.

    Tasks ``A`` (2 phases, d=[1,1]), ``B`` (3 phases, d=[1,1,1]),
    ``C``/``D`` (single phase, d=[1]); buffers::

        A→B : in [3,5]   out [1,1,4]  M0 0
        B→C : in [6,2,1] out [6]      M0 0
        C→A : in [2]     out [1,3]    M0 4
        A→D : in [3,5]   out [24]     M0 13
        D→C : in [36]    out [6]      M0 6

    Minimal repetition vector: ``q = {A:3, B:4, C:6, D:1}``.
    """
    g = CsdfGraph("figure2")
    g.add_task(Task("A", (1, 1)))
    g.add_task(Task("B", (1, 1, 1)))
    g.add_task(Task("C", (1,)))
    g.add_task(Task("D", (1,)))
    g.add_buffer(Buffer("a_b", "A", "B", (3, 5), (1, 1, 4), 0))
    g.add_buffer(Buffer("b_c", "B", "C", (6, 2, 1), (6,), 0))
    g.add_buffer(Buffer("c_a", "C", "A", (2,), (1, 3), 4))
    g.add_buffer(Buffer("a_d", "A", "D", (3, 5), (24,), 13))
    g.add_buffer(Buffer("d_c", "D", "C", (36,), (6,), 6))
    return g
