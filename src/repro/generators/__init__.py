"""Benchmark graph generators.

* :mod:`repro.generators.paper` — the paper's own Figures 1 and 2.
* :mod:`repro.generators.dsp` — named classic DSP SDF applications
  (Table 1's ActualDSP category).
* :mod:`repro.generators.random_sdf` — seeded random SDF categories
  mimicking Table 1's MimicDSP / LgHSDF / LgTransient statistics.
* :mod:`repro.generators.csdf_apps` — structural analogues of the
  IB+AG5CSDF industrial applications (Table 2's top block).
* :mod:`repro.generators.synthetic` — graph1..graph5 analogues (Table 2's
  bottom block).
"""

from repro.generators.paper import figure1_buffer, figure2_graph
from repro.generators.dsp import (
    actual_dsp_graphs,
    h263_decoder,
    modem,
    mp3_playback,
    samplerate_converter,
    satellite_receiver,
)
from repro.generators.random_sdf import (
    large_hsdf,
    large_transient,
    mimic_dsp,
    random_connected_sdf,
)
from repro.generators.csdf_apps import (
    blackscholes,
    csdf_applications,
    echo,
    h264_encoder,
    jpeg2000,
    pdetect,
)
from repro.generators.synthetic import synthetic_graphs

__all__ = [
    "figure1_buffer",
    "figure2_graph",
    "actual_dsp_graphs",
    "h263_decoder",
    "modem",
    "mp3_playback",
    "samplerate_converter",
    "satellite_receiver",
    "large_hsdf",
    "large_transient",
    "mimic_dsp",
    "random_connected_sdf",
    "blackscholes",
    "csdf_applications",
    "echo",
    "h264_encoder",
    "jpeg2000",
    "pdetect",
    "synthetic_graphs",
]
