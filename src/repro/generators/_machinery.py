"""Shared construction machinery for the seeded benchmark generators.

All generators follow the same recipe, which guarantees *consistency and
liveness by construction* (no rejection sampling):

1. pick a repetition value ``q_t`` per task;
2. build a DAG backbone over a topological order (forward edges carry no
   initial tokens — sources make the DAG part live);
3. optionally add feedback (back) edges whose initial marking covers one
   full iteration of their consumer (``M0 = o_b·q_dst``), so the first
   graph iteration — and hence every iteration — completes;
4. edge rates between ``t`` and ``t'`` are scaled copies of
   ``q_{t'}/g`` and ``q_t/g`` (``g = gcd``), split into random
   cyclo-static phase compositions.

Feedback markings of exactly one iteration are live yet frequently
*binding*, which keeps the generated instances non-trivial for the
throughput engines.
"""

from __future__ import annotations

import random
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.buffer import Buffer
from repro.model.graph import CsdfGraph
from repro.model.task import Task


def split_total(rng: random.Random, total: int, parts: int) -> Tuple[int, ...]:
    """Random composition of ``total`` into ``parts`` non-negative ints.

    At least one part is positive (``total ≥ 1`` required). Used to turn a
    per-iteration rate total into a cyclo-static phase vector.
    """
    if total < 1:
        raise ValueError("total must be ≥ 1")
    if parts == 1:
        return (total,)
    cuts = sorted(rng.randrange(0, total + 1) for _ in range(parts - 1))
    bounds = [0] + cuts + [total]
    return tuple(bounds[i + 1] - bounds[i] for i in range(parts))


def balanced_rate_totals(
    q_src: int,
    q_dst: int,
    rate_scale: int = 1,
) -> Tuple[int, int]:
    """Per-iteration totals ``(i_b, o_b)`` satisfying ``q_src·i = q_dst·o``."""
    g = gcd(q_src, q_dst)
    return (q_dst // g) * rate_scale, (q_src // g) * rate_scale


class GraphSpec:
    """Incremental builder used by every generator.

    Tracks the topological order so feedback edges can be marked with a
    liveness-guaranteeing number of initial tokens automatically.
    """

    def __init__(self, name: str, rng: random.Random):
        self.name = name
        self.rng = rng
        self.graph = CsdfGraph(name)
        self.q: Dict[str, int] = {}
        self.phases: Dict[str, int] = {}
        self._order: Dict[str, int] = {}
        self._edge_count = 0

    def add_task(
        self,
        name: str,
        q: int,
        phases: int = 1,
        durations: Optional[Sequence[int]] = None,
        duration_range: Tuple[int, int] = (1, 10),
    ) -> None:
        if durations is None:
            lo, hi = duration_range
            durations = [self.rng.randint(lo, hi) for _ in range(phases)]
        self.graph.add_task(Task(name, tuple(durations)))
        self.q[name] = q
        self.phases[name] = len(tuple(durations))
        self._order[name] = len(self._order)

    def connect(
        self,
        src: str,
        dst: str,
        *,
        rate_scale: int = 1,
        tokens: Optional[int] = None,
        iteration_margin: int = 1,
    ) -> Buffer:
        """Add a buffer between existing tasks.

        ``tokens=None`` picks the liveness default: 0 for forward edges
        (w.r.t. insertion order), ``iteration_margin`` full consumer
        iterations for feedback edges.
        """
        i_total, o_total = balanced_rate_totals(
            self.q[src], self.q[dst], rate_scale
        )
        production = split_total(self.rng, i_total, self.phases[src])
        consumption = split_total(self.rng, o_total, self.phases[dst])
        if tokens is None:
            if self._order[src] < self._order[dst]:
                tokens = 0
            else:
                tokens = iteration_margin * o_total * self.q[dst]
        buffer = Buffer(
            name=f"b{self._edge_count}_{src}_{dst}",
            source=src,
            target=dst,
            production=production,
            consumption=consumption,
            initial_tokens=tokens,
        )
        self._edge_count += 1
        self.graph.add_buffer(buffer)
        return buffer

    def build(self) -> CsdfGraph:
        return self.graph


def random_q_vector(
    rng: random.Random,
    count: int,
    *,
    max_q: int,
    ensure_unit: bool = True,
) -> List[int]:
    """Per-task repetition values; a 1 keeps the overall gcd at 1."""
    values = [rng.randint(1, max_q) for _ in range(count)]
    if ensure_unit and count:
        values[rng.randrange(count)] = 1
    return values
