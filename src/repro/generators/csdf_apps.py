"""Structural analogues of the IB+AG5CSDF industrial applications.

Table 2 evaluates five applications from the Kalray toolchain; the suite
is proprietary, so each generator reproduces the *published structure* —
task count, buffer count, and the Σq scale driver — with seeded synthetic
rate/duration content (see DESIGN.md §5 for why this preserves the
experiment's behaviour):

| app            | tasks | buffers | paper Σq      |
|----------------|-------|---------|---------------|
| BlackScholes   |  41   |  40     | 11 895        |
| Echo           | 240   | 703     | 802 971 540   |
| JPEG2000       |  38   |  82     | 336 024       |
| Pdetect        |  58   |  76     | 3 883 200     |
| H264 Encoder   | 665   | 3128    | 24 094 980    |

``scale`` multiplies the rate heterogeneity that drives Σq. The default
``scale=1`` keeps Σq in the 10³–10⁵ range so the pure-Python engines
finish in seconds; passing larger scales approaches the paper's numbers
at proportional cost. Every generator yields a consistent, live CSDFG
with genuinely cyclo-static (multi-phase) tasks.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.generators._machinery import GraphSpec
from repro.model.graph import CsdfGraph


def blackscholes(scale: int = 1, seed: int = 1) -> CsdfGraph:
    """Map-reduce option pricer: source → 39 parallel workers → sink.

    41 tasks, exactly 40 buffers (a tree: scatter + gather share the
    worker arcs). Workers are cyclo-static (batch phases).
    """
    rng = random.Random(seed * 31 + 5)
    spec = GraphSpec("blackscholes", rng)
    workers = 38
    batch = 5 * scale
    spec.add_task("scatter", q=1, phases=2, duration_range=(2, 6))
    for w in range(workers):
        spec.add_task(f"worker{w}", q=batch, phases=rng.randint(2, 3),
                      duration_range=(3, 12))
    spec.add_task("reduce", q=batch, phases=2, duration_range=(3, 8))
    spec.add_task("gather", q=1, phases=2, duration_range=(2, 6))
    # a tree: 41 tasks, exactly 40 buffers (matches the paper's counts —
    # with one gather arc; the bounded-buffer variant doubles it to 80).
    for w in range(workers):
        spec.connect("scatter", f"worker{w}")
    spec.connect(f"worker{workers - 1}", "reduce")
    spec.connect("reduce", "gather")
    return spec.build()


def echo(scale: int = 1, seed: int = 2) -> CsdfGraph:
    """Audio echo canceller: dense layered filter network.

    240 tasks, 703 buffers. Σq blows up through sample-rate ratios — the
    paper's 8·10⁸ comes from audio rates (44.1 kHz family); ``scale``
    raises the per-layer ratio products toward that.
    """
    rng = random.Random(seed * 37 + 7)
    spec = GraphSpec("echo", rng)
    layers = [1, 8, 30, 60, 80, 40, 16, 4, 1]
    assert sum(layers) == 240
    ratio_pool = [1, 1, 2, 2, 3, 4, 5][: 4 + min(3, scale)]
    q_of_layer = [1]
    for _ in layers[1:]:
        q_of_layer.append(
            max(1, q_of_layer[-1] * rng.choice(ratio_pool) * scale
                // rng.choice([1, 1, 2]))
        )
    names: List[List[str]] = []
    idx = 0
    for li, width in enumerate(layers):
        row = []
        for _ in range(width):
            q = max(1, q_of_layer[li] + rng.randint(0, scale))
            name = f"e{idx}"
            spec.add_task(name, q=q, phases=rng.randint(1, 3),
                          duration_range=(1, 9))
            row.append(name)
            idx += 1
        names.append(row)
    edges = 0
    target_edges = 703
    # dense bipartite-ish wiring between consecutive layers
    for a, b in zip(names, names[1:]):
        for j, dst in enumerate(b):
            spec.connect(a[j % len(a)], dst)
            edges += 1
    # extra cross edges until the budget (minus feedback) is spent
    flat = [n for row in names for n in row]
    order = {n: i for i, n in enumerate(flat)}
    feedback_budget = 3
    while edges < target_edges - feedback_budget:
        u, v = rng.sample(flat, 2)
        if order[u] > order[v]:
            u, v = v, u
        spec.connect(u, v)
        edges += 1
    for _ in range(feedback_budget):
        u, v = rng.sample(flat, 2)
        if order[u] < order[v]:
            u, v = v, u
        spec.connect(u, v)
        edges += 1
    return spec.build()


def jpeg2000(scale: int = 1, seed: int = 3) -> CsdfGraph:
    """JPEG2000 encoder: tiler → per-subband wavelet/coder lanes → rate
    control loop. 38 tasks, 82 buffers."""
    rng = random.Random(seed * 41 + 11)
    spec = GraphSpec("jpeg2000", rng)
    tiles = 16 * scale
    spec.add_task("reader", q=1, phases=1, duration_range=(4, 8))
    spec.add_task("tiler", q=1, phases=2, duration_range=(2, 6))
    lanes = 8
    per_lane = ["dwt", "quant", "mq"]
    for lane in range(lanes):
        for stage_i, stage in enumerate(per_lane):
            q = tiles * (2 ** stage_i) // (1 if stage_i < 2 else 2)
            spec.add_task(f"{stage}{lane}", q=max(1, q),
                          phases=rng.randint(1, 3), duration_range=(2, 10))
    for name, q in [("t2", 2 * scale), ("rate", 1), ("writer", 1)]:
        spec.add_task(name, q=max(1, q), phases=1, duration_range=(3, 9))
    # 38 tasks total: 2 + 24 + 3 = 29... pad with post-processing chain
    for i in range(9):
        spec.add_task(f"post{i}", q=max(1, scale * (i % 3 + 1)),
                      phases=rng.randint(1, 2), duration_range=(1, 6))

    edges = 0
    spec.connect("reader", "tiler"); edges += 1
    for lane in range(lanes):
        spec.connect("tiler", f"dwt{lane}"); edges += 1
        spec.connect(f"dwt{lane}", f"quant{lane}"); edges += 1
        spec.connect(f"quant{lane}", f"mq{lane}"); edges += 1
        spec.connect(f"mq{lane}", "t2"); edges += 1
    spec.connect("t2", "rate"); edges += 1
    spec.connect("rate", "writer"); edges += 1
    prev = "writer"
    for i in range(9):
        spec.connect(prev, f"post{i}"); edges += 1
        prev = f"post{i}"
    # rate-control feedback to the quantizers (two iterations in flight
    # so a strictly periodic schedule exists in the unbounded case)
    for lane in range(lanes):
        spec.connect("rate", f"quant{lane}", iteration_margin=2); edges += 1
    names = spec.graph.task_names()
    order = {n: i for i, n in enumerate(names)}
    while edges < 82:
        u, v = rng.sample(names, 2)
        if order[u] > order[v]:
            u, v = v, u
        spec.connect(u, v)
        edges += 1
    return spec.build()


def pdetect(scale: int = 1, seed: int = 4) -> CsdfGraph:
    """Pedestrian detection: image pyramid with per-scale detector lanes.

    58 tasks, 76 buffers; Σq driven by the per-window rates.
    """
    rng = random.Random(seed * 43 + 13)
    spec = GraphSpec("pdetect", rng)
    windows = 60 * scale
    # task insertion order == dataflow topological order (the GraphSpec
    # liveness rules and the random filler edges both rely on it)
    spec.add_task("cam", q=1, phases=1, duration_range=(3, 7))
    for i in range(28):
        spec.add_task(f"pre{i}", q=max(1, (i % 4) * scale + 1),
                      phases=rng.randint(1, 2), duration_range=(1, 4))
    spec.add_task("pyr", q=1, phases=3, duration_range=(2, 6))
    scales_n = 8
    for s in range(scales_n):
        w = max(1, windows // (s + 1))
        spec.add_task(f"win{s}", q=w, phases=rng.randint(1, 2),
                      duration_range=(1, 5))
        spec.add_task(f"hog{s}", q=w, phases=rng.randint(2, 3),
                      duration_range=(3, 11))
        spec.add_task(f"svm{s}", q=w, phases=1, duration_range=(2, 8))
    for name in ["nms", "track", "draw", "sink"]:
        spec.add_task(name, q=1, phases=rng.randint(1, 2),
                      duration_range=(2, 6))
    edges = 0
    spec.connect("cam", "pre0"); edges += 1
    for i in range(27):
        spec.connect(f"pre{i}", f"pre{i+1}"); edges += 1
    spec.connect("pre27", "pyr"); edges += 1
    for s in range(scales_n):
        spec.connect("pyr", f"win{s}"); edges += 1
        spec.connect(f"win{s}", f"hog{s}"); edges += 1
        spec.connect(f"hog{s}", f"svm{s}"); edges += 1
        spec.connect(f"svm{s}", "nms"); edges += 1
    for a, b in [("nms", "track"), ("track", "draw"), ("draw", "sink")]:
        spec.connect(a, b); edges += 1
    # tracker feedback steering the window generators (triple-buffered so
    # a strictly periodic schedule exists in the unbounded case)
    for s in range(0, scales_n, 2):
        spec.connect("track", f"win{s}", iteration_margin=3); edges += 1
    names = spec.graph.task_names()
    order = {n: i for i, n in enumerate(names)}
    while edges < 76:
        u, v = rng.sample(names, 2)
        if order[u] > order[v]:
            u, v = v, u
        spec.connect(u, v)
        edges += 1
    return spec.build()


def h264_encoder(scale: int = 1, seed: int = 5) -> CsdfGraph:
    """H.264 encoder: macroblock pipeline replicated across slice lanes.

    665 tasks, 3128 buffers — the paper's largest graph. The structure is
    a control front end, 16 slice-encoder lanes of 40 tasks each, and a
    bitstream back end, densely wired (neighbour-prediction dependencies
    between adjacent lanes).
    """
    rng = random.Random(seed * 47 + 17)
    spec = GraphSpec("h264encoder", rng)
    mb = 24 * scale  # macroblocks per slice per frame
    front = ["src", "scaler", "analyse", "ratectl", "gop"]
    for i, name in enumerate(front):
        spec.add_task(name, q=1, phases=rng.randint(1, 3),
                      duration_range=(2, 8))
    lanes = 16
    lane_stages = 40
    for lane in range(lanes):
        for st in range(lane_stages):
            q = mb if 2 <= st < 36 else max(1, mb // 8)
            spec.add_task(f"l{lane}s{st}", q=q, phases=rng.randint(1, 3),
                          duration_range=(1, 9))
    back = [f"back{i}" for i in range(20)]
    for name in back:
        spec.add_task(name, q=rng.choice([1, 2, 4]),
                      phases=rng.randint(1, 2), duration_range=(2, 7))
    # 5 + 640 + 20 = 665 ✓
    edges = 0
    for a, b in zip(front, front[1:]):
        spec.connect(a, b); edges += 1
    for lane in range(lanes):
        spec.connect("gop", f"l{lane}s0"); edges += 1
        for st in range(lane_stages - 1):
            spec.connect(f"l{lane}s{st}", f"l{lane}s{st+1}"); edges += 1
        spec.connect(f"l{lane}s{lane_stages-1}", back[lane % len(back)])
        edges += 1
        if lane:
            # intra-prediction neighbour dependencies
            for st in range(4, lane_stages - 4, 4):
                spec.connect(f"l{lane-1}s{st}", f"l{lane}s{st}")
                edges += 1
    for a, b in zip(back, back[1:]):
        spec.connect(a, b); edges += 1
    # reference-frame feedback into the analyser (several frames in
    # flight: the frame loop threads all 16 lanes through the cross
    # edges, and a strictly periodic schedule needs the extra slack —
    # Table 2 reports 100% for the periodic method on the unbounded H264)
    spec.connect(back[-1], "analyse", iteration_margin=6); edges += 1
    names = spec.graph.task_names()
    order = {n: i for i, n in enumerate(names)}
    while edges < 3128:
        u, v = rng.sample(names, 2)
        if order[u] > order[v]:
            u, v = v, u
        spec.connect(u, v)
        edges += 1
    return spec.build()


def csdf_applications(
    scale: int = 1,
) -> List[Tuple[str, Callable[[], CsdfGraph]]]:
    """Name → thunk pairs for the Table 2 application block."""
    return [
        ("BlackScholes", lambda: blackscholes(scale)),
        ("Echo", lambda: echo(scale)),
        ("JPEG2000", lambda: jpeg2000(scale)),
        ("Pdetect", lambda: pdetect(scale)),
        ("H264 Encoder", lambda: h264_encoder(scale)),
    ]
