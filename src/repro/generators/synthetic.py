"""Synthetic CSDF graphs — analogues of Table 2's graph1..graph5.

The paper's five synthetic graphs stress different failure modes of the
three methods:

* graph1 (90 tasks, 617 buffers): dense, cyclic, strongly heterogeneous
  rates — the 1-periodic method collapses to 0.1% optimality;
* graph2 (70/473) and graph3 (154/671): Σq in the billions — *nobody*
  finishes except the periodic approximation (reproduced here as a high
  ``scale`` knob; at scale 1 they are merely hard);
* graph4 (2426/2900) and graph5 (2767/4894): huge but sparser graphs
  where K-Iter still wins.

All are seeded, consistent, and live by construction.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.generators._machinery import GraphSpec, random_q_vector
from repro.model.graph import CsdfGraph


def _dense_synthetic(
    name: str,
    seed: int,
    tasks: int,
    buffers: int,
    *,
    max_q: int,
    scale: int,
    phases_max: int = 3,
    feedback: int = 4,
) -> CsdfGraph:
    rng = random.Random(seed)
    spec = GraphSpec(name, rng)
    q_values = random_q_vector(rng, tasks, max_q=max_q * scale)
    for i, q in enumerate(q_values):
        spec.add_task(f"t{i}", q, phases=rng.randint(1, phases_max),
                      duration_range=(1, 12))
    names = [f"t{i}" for i in range(tasks)]
    edges = 0
    for i in range(1, tasks):
        spec.connect(names[rng.randrange(i)], names[i])
        edges += 1
    while edges < buffers - feedback:
        i, j = rng.sample(range(tasks), 2)
        spec.connect(names[min(i, j)], names[max(i, j)])
        edges += 1
    for _ in range(feedback):
        j = rng.randrange(1, tasks)
        i = rng.randrange(j)
        spec.connect(names[j], names[i])
        edges += 1
    return spec.build()


def graph1(scale: int = 1) -> CsdfGraph:
    return _dense_synthetic("graph1", 1001, 90, 617, max_q=9, scale=scale,
                            feedback=6)


def graph2(scale: int = 1) -> CsdfGraph:
    return _dense_synthetic("graph2", 1002, 70, 473, max_q=16, scale=scale,
                            feedback=5)


def graph3(scale: int = 1) -> CsdfGraph:
    return _dense_synthetic("graph3", 1003, 154, 671, max_q=14, scale=scale,
                            feedback=6)


def graph4(scale: int = 1) -> CsdfGraph:
    return _dense_synthetic("graph4", 1004, 2426, 2900, max_q=4, scale=scale,
                            phases_max=2, feedback=3)


def graph5(scale: int = 1) -> CsdfGraph:
    return _dense_synthetic("graph5", 1005, 2767, 4894, max_q=4, scale=scale,
                            phases_max=2, feedback=3)


def synthetic_graphs(
    scale: int = 1,
) -> List[Tuple[str, Callable[[], CsdfGraph]]]:
    """Name → thunk pairs for the Table 2 synthetic block."""
    return [
        ("graph1", lambda: graph1(scale)),
        ("graph2", lambda: graph2(scale)),
        ("graph3", lambda: graph3(scale)),
        ("graph4", lambda: graph4(scale)),
        ("graph5", lambda: graph5(scale)),
    ]
