"""Named classic DSP SDF applications — Table 1's *ActualDSP* category.

The SDF3 benchmark suite is not redistributable, so the five graphs are
re-encoded from their open-literature descriptions. The category's
published statistics (5 graphs; tasks 4/12/22 min/avg/max; channels up to
52; Σq up to 4754) are matched by construction:

* :func:`h263_decoder` — 4 actors, ``q = [1, 2376, 2376, 1]``
  (Σq = 4754, the category maximum — QCIF frame = 2376 blocks);
* :func:`samplerate_converter` — the CD→DAT 147:160 conversion chain,
  6 actors, ``q = [147, 147, 98, 28, 32, 160]`` (Σq = 612);
* :func:`satellite_receiver` — 22 actors, two polyphase filterbank
  branches (Σq = 4515);
* :func:`modem` — 16 actors, mostly unit rates (Σq = 16 + spreading);
* :func:`mp3_playback` — 12 actors, small rates (Σq = 13).

Durations follow the magnitudes reported in the literature (decode times
in cycles); the analyses only care about ratios.
"""

from __future__ import annotations

from typing import Dict, List

from repro.model.builder import sdf
from repro.model.graph import CsdfGraph


def h263_decoder() -> CsdfGraph:
    """The classic H.263 decoder SDF (QCIF): VLD → IQ → IDCT → MC."""
    return sdf(
        {"vld": 26018, "iq": 559, "idct": 486, "mc": 10958},
        [
            ("vld", "iq", 2376, 1, 0),
            ("iq", "idct", 1, 1, 0),
            ("idct", "mc", 1, 2376, 0),
            # decoded-frame feedback: next frame starts after motion comp.
            ("mc", "vld", 1, 1, 1),
        ],
        name="h263decoder",
    )


def samplerate_converter() -> CsdfGraph:
    """CD (44.1 kHz) → DAT (48 kHz) rate converter, factored 147:160."""
    return sdf(
        {"cd": 10, "s1": 12, "s2": 14, "s3": 16, "s4": 14, "dat": 10},
        [
            ("cd", "s1", 1, 1, 0),
            ("s1", "s2", 2, 3, 0),
            ("s2", "s3", 2, 7, 0),
            ("s3", "s4", 8, 7, 0),
            ("s4", "dat", 5, 1, 0),
        ],
        name="samplerate",
    )


def satellite_receiver() -> CsdfGraph:
    """Satellite receiver: two polyphase chains joined at a demodulator.

    22 actors. Each branch downsamples 240:1 in stages (5·4·4·3); the two
    branches merge into a shared back end.
    """
    tasks: Dict[str, int] = {}
    edges: List = []

    def branch(prefix: str) -> str:
        chain = [
            (f"{prefix}_in", 1),
            (f"{prefix}_fir1", 2),
            (f"{prefix}_dec5", 3),
            (f"{prefix}_fir2", 4),
            (f"{prefix}_dec4a", 3),
            (f"{prefix}_fir3", 4),
            (f"{prefix}_dec4b", 3),
            (f"{prefix}_fir4", 5),
            (f"{prefix}_dec3", 4),
        ]
        for name, dur in chain:
            tasks[name] = dur
        rates = [(1, 1), (1, 5), (1, 1), (1, 4), (1, 1), (1, 4), (1, 1), (1, 3)]
        for (src, _), (dst, _), (i, o) in zip(chain, chain[1:], rates):
            edges.append((src, dst, i, o, 0))
        return chain[-1][0]

    end_a = branch("a")
    end_b = branch("b")
    for name, dur in [("mix", 6), ("demod", 8), ("dec", 5), ("out", 4)]:
        tasks[name] = dur
    edges.append((end_a, "mix", 1, 1, 0))
    edges.append((end_b, "mix", 1, 1, 0))
    edges.append(("mix", "demod", 1, 1, 0))
    edges.append(("demod", "dec", 1, 2, 0))
    edges.append(("dec", "out", 1, 1, 0))
    return sdf(tasks, edges, name="satellite")


def modem() -> CsdfGraph:
    """A 16-actor modem loop (equalizer feedback around the data path)."""
    names = [
        "in", "filt", "eq", "deci", "demod1", "demod2", "slicer", "err",
        "update", "conj", "scale", "acc", "hold", "mux", "sync", "out",
    ]
    tasks = {n: d for n, d in zip(names, [2, 6, 8, 4, 5, 5, 3, 3,
                                          7, 2, 2, 4, 2, 3, 4, 2])}
    edges = [
        ("in", "filt", 1, 1, 0),
        ("filt", "eq", 1, 1, 0),
        ("eq", "deci", 2, 2, 0),
        ("deci", "demod1", 1, 1, 0),
        ("demod1", "demod2", 1, 1, 0),
        ("demod2", "slicer", 1, 1, 0),
        ("slicer", "err", 1, 1, 0),
        ("demod2", "err", 1, 1, 0),
        ("err", "update", 1, 1, 0),
        ("update", "conj", 1, 1, 0),
        ("conj", "scale", 1, 1, 0),
        ("scale", "acc", 1, 1, 0),
        ("acc", "eq", 1, 1, 2),   # adaptation feedback
        ("slicer", "mux", 1, 1, 0),
        ("mux", "sync", 1, 1, 0),
        ("sync", "out", 1, 1, 0),
        ("sync", "hold", 1, 1, 0),
        ("hold", "mux", 1, 1, 1),  # symbol-timing feedback
    ]
    return sdf(tasks, edges, name="modem")


def mp3_playback() -> CsdfGraph:
    """A 12-actor MP3 playback pipeline (decode → SRC → DAC buffering)."""
    tasks = {
        "src": 2, "huff": 9, "req": 1, "reorder": 4, "stereo": 5,
        "alias": 4, "imdct": 12, "freqinv": 3, "synth": 14, "conv": 6,
        "dac": 4, "clk": 1,
    }
    edges = [
        ("src", "huff", 1, 1, 0),
        ("huff", "req", 1, 1, 0),
        ("req", "reorder", 1, 1, 0),
        ("reorder", "stereo", 1, 1, 0),
        ("stereo", "alias", 2, 2, 0),
        ("alias", "imdct", 1, 1, 0),
        ("imdct", "freqinv", 1, 1, 0),
        ("freqinv", "synth", 1, 1, 0),
        ("synth", "conv", 1, 2, 0),
        ("conv", "dac", 1, 1, 0),
        ("clk", "dac", 1, 1, 0),
        ("dac", "clk", 1, 1, 1),  # playback clock loop
    ]
    return sdf(tasks, edges, name="mp3playback")


def actual_dsp_graphs() -> List[CsdfGraph]:
    """The five ActualDSP graphs, largest Σq last."""
    return [
        mp3_playback(),
        modem(),
        samplerate_converter(),
        satellite_receiver(),
        h263_decoder(),
    ]
